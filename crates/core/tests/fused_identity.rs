//! Fused-vs-unfused differential tests across the tiling kernels.
//!
//! Every kernel × action pair that routes through `try_fused_pass` is run
//! on three interpreter routes — fused tile passes (the default),
//! op-by-op vectorized (`with_fused_tile(false)`), and the scalar
//! reference — and must produce bit-identical output buffers,
//! `AccessTally` counters and simulated timing. Host-side `InterpStats`
//! are the only permitted difference: the fused route must report
//! `fused_ops > 0`, the other two exactly zero.

use gpu_sim::{Device, DeviceConfig, KernelRun};
use tbs_core::distance::{Euclidean, GaussianRbf};
use tbs_core::histogram::HistogramSpec;
use tbs_core::kernels::{
    pair_launch, CrossShmKernel, IntraMode, PairScope, RegisterRocKernel, RegisterShmKernel,
    ShmShmKernel, ShuffleKernel,
};
use tbs_core::output::{CountWithinRadius, KdeAction, SharedHistogramAction};
use tbs_core::point::SoaPoints;

const B: u32 = 64;

/// Deterministic pseudo-random cloud in a 100³ box (xorshift64).
fn cloud(n: usize) -> SoaPoints<3> {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let pts: Vec<[f32; 3]> = (0..n)
        .map(|_| {
            std::array::from_fn(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 10_000) as f32 * 0.01
            })
        })
        .collect();
    SoaPoints::from_points(&pts)
}

/// Device output read back as raw bit words.
type Bits = Vec<u64>;

fn routes() -> [DeviceConfig; 3] {
    [
        DeviceConfig::titan_x(),
        DeviceConfig::titan_x().with_fused_tile(false),
        DeviceConfig::titan_x().with_scalar_reference(true),
    ]
}

/// Run `go` once per interpreter route and demand bit-identical device
/// state; returns `[fused, op-by-op, scalar]` runs for extra asserts.
fn assert_identical(go: impl Fn(&mut Device) -> (Bits, KernelRun)) -> [KernelRun; 3] {
    let mut results: Vec<(Bits, KernelRun)> = routes()
        .into_iter()
        .map(|cfg| go(&mut Device::new(cfg)))
        .collect();
    let (bits_s, run_s) = results.pop().unwrap();
    let (bits_v, run_v) = results.pop().unwrap();
    let (bits_f, run_f) = results.pop().unwrap();
    assert_eq!(bits_f, bits_v, "fused vs op-by-op output bits");
    assert_eq!(bits_f, bits_s, "fused vs scalar output bits");
    assert_eq!(run_f.tally, run_v.tally, "fused vs op-by-op tally");
    assert_eq!(run_f.tally, run_s.tally, "fused vs scalar tally");
    assert_eq!(
        run_f.timing.seconds.to_bits(),
        run_v.timing.seconds.to_bits(),
        "fused vs op-by-op timing"
    );
    assert_eq!(
        run_f.timing.seconds.to_bits(),
        run_s.timing.seconds.to_bits(),
        "fused vs scalar timing"
    );
    assert!(
        run_f.interp.fused_ops > 0,
        "default route must take fused tile passes"
    );
    assert_eq!(run_v.interp.fused_ops, 0, "op-by-op route must not fuse");
    assert_eq!(run_s.interp.fused_ops, 0, "scalar route must not fuse");
    [run_f, run_v, run_s]
}

fn count_run(
    dev: &mut Device,
    pts: &SoaPoints<3>,
    mk: impl Fn(tbs_core::point::DeviceSoa<3>, CountWithinRadius) -> Box<dyn gpu_sim::Kernel>,
) -> (Bits, KernelRun) {
    let input = pts.upload(dev);
    let lc = pair_launch(input.n, B);
    let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
    let k = mk(input, CountWithinRadius { radius: 9.0, out });
    let run = dev.launch(&*k, lc);
    (dev.u64_slice(out).to_vec(), run)
}

#[test]
fn register_shm_count_half_pairs_is_route_identical() {
    // 200 = 3×64 + 8: ragged last block AND ragged last warp.
    let pts = cloud(200);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(RegisterShmKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::HalfPairs,
                IntraMode::Regular,
            ))
        })
    });
}

#[test]
fn register_shm_count_all_pairs_is_route_identical() {
    // AllPairs exercises the NotEqual predicate in the intra phase.
    let pts = cloud(200);
    let [fused, _, _] = assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(RegisterShmKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::AllPairs,
                IntraMode::Regular,
            ))
        })
    });
    // Both phases fuse: most useful lane work must flow the fused path.
    assert!(
        fused.interp.fused_coverage(&fused.tally) > 0.5,
        "coverage {}",
        fused.interp.fused_coverage(&fused.tally)
    );
}

#[test]
fn shm_shm_count_all_pairs_is_route_identical() {
    let pts = cloud(150);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(ShmShmKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::AllPairs,
                IntraMode::Regular,
            ))
        })
    });
}

#[test]
fn shm_shm_count_half_pairs_is_route_identical() {
    let pts = cloud(150);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(ShmShmKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::HalfPairs,
                IntraMode::Regular,
            ))
        })
    });
}

#[test]
fn register_roc_count_all_pairs_is_route_identical() {
    let pts = cloud(200);
    let [fused, _, _] = assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(RegisterRocKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::AllPairs,
                IntraMode::Regular,
            ))
        })
    });
    // The fused ROC path must keep the read-only cache hot — same hit
    // pattern the op-by-op route produces (the tally equality above
    // proves equal; this proves non-trivial).
    assert!(fused.tally.roc_hit_sectors > fused.tally.roc_miss_sectors);
}

#[test]
fn register_roc_count_half_pairs_is_route_identical() {
    let pts = cloud(200);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(RegisterRocKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::HalfPairs,
                IntraMode::Regular,
            ))
        })
    });
}

#[test]
fn shuffle_count_half_pairs_is_route_identical() {
    // HalfPairs intra fragments use the LessThan predicate.
    let pts = cloud(150);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(ShuffleKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::HalfPairs,
            ))
        })
    });
}

#[test]
fn shuffle_count_all_pairs_is_route_identical() {
    let pts = cloud(150);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(ShuffleKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::AllPairs,
            ))
        })
    });
}

#[test]
fn cross_count_is_route_identical() {
    let a = cloud(130);
    let b = cloud(150);
    assert_identical(|dev| {
        let da = a.upload(dev);
        let db = b.upload(dev);
        let lc = pair_launch(da.n, B);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = CrossShmKernel::new(da, db, Euclidean, CountWithinRadius { radius: 9.0, out }, B);
        let run = dev.launch(&k, lc);
        (dev.u64_slice(out).to_vec(), run)
    });
}

#[test]
fn register_shm_histogram_is_route_identical() {
    // Histogram consumer: per-step shared atomics inside the fused pass.
    let pts = cloud(200);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let lc = pair_launch(input.n, B);
        let spec = HistogramSpec::new(32, 180.0);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            SharedHistogramAction { spec, private },
            B,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let bits = dev.u32_slice(private).iter().map(|&x| x as u64).collect();
        (bits, run)
    });
}

#[test]
fn register_roc_histogram_is_route_identical() {
    // The paper's winning SDH configuration: ROC input, SHM output.
    let pts = cloud(200);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let lc = pair_launch(input.n, B);
        let spec = HistogramSpec::new(32, 180.0);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * spec.buckets) as usize);
        let k = RegisterRocKernel::new(
            input,
            Euclidean,
            SharedHistogramAction { spec, private },
            B,
            PairScope::AllPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let bits = dev.u32_slice(private).iter().map(|&x| x as u64).collect();
        (bits, run)
    });
}

#[test]
fn register_shm_kde_gaussian_is_route_identical() {
    // Sum consumer + a transcendental distance (exp in eval_host).
    let pts = cloud(200);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let n = input.n;
        let lc = pair_launch(n, B);
        let out = dev.alloc_f32_zeroed(lc.total_threads() as usize);
        let k = RegisterShmKernel::new(
            input,
            GaussianRbf::new(12.0),
            KdeAction { out, n },
            B,
            PairScope::AllPairs,
            IntraMode::Regular,
        );
        let run = dev.launch(&k, lc);
        let bits = dev
            .f32_slice(out)
            .iter()
            .map(|&x| x.to_bits() as u64)
            .collect();
        (bits, run)
    });
}

#[test]
fn shuffle_kde_gaussian_is_route_identical() {
    let pts = cloud(150);
    assert_identical(|dev| {
        let input = pts.upload(dev);
        let n = input.n;
        let lc = pair_launch(n, B);
        let out = dev.alloc_f32_zeroed(lc.total_threads() as usize);
        let k = ShuffleKernel::new(
            input,
            GaussianRbf::new(12.0),
            KdeAction { out, n },
            B,
            PairScope::AllPairs,
        );
        let run = dev.launch(&k, lc);
        let bits = dev
            .f32_slice(out)
            .iter()
            .map(|&x| x.to_bits() as u64)
            .collect();
        (bits, run)
    });
}

#[test]
fn sub_block_input_is_route_identical() {
    // n = 20 < B: a single ragged block whose only warp is partially
    // valid — the fused predicate masks must match lane-exact.
    let pts = cloud(20);
    assert_identical(|dev| {
        count_run(dev, &pts, |input, act| {
            Box::new(RegisterShmKernel::new(
                input,
                Euclidean,
                act,
                B,
                PairScope::AllPairs,
                IntraMode::Regular,
            ))
        })
    });
}
