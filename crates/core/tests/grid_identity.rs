//! Differential exactness suite for the uniform-grid spatial front end.
//!
//! The grid's whole value proposition is that pruning is *invisible* in
//! the outputs: every counted quantity — within-radius pair counts and
//! bounded radial histograms — must be **bit-identical** between the
//! grid-pruned route and the all-pairs route, on the CPU oracle and on
//! the simulated device, across uniform, clustered and degenerate
//! layouts, for r_max from a sliver of the box to larger than the box
//! (where the grid must degrade gracefully to a single-cell all-pairs
//! launch).

use gpu_sim::{Device, DeviceConfig};
use proptest::prelude::*;
use tbs_apps::sdh::{sdh_gpu, SdhOutputMode};
use tbs_apps::{
    gridded_count_within, gridded_count_within_multi, gridded_count_within_routed,
    gridded_radial_histogram, gridded_radial_histogram_routed, pcf_gpu, GriddedCatalog,
    GriddedRoute, PairwisePlan,
};
use tbs_core::distance::Euclidean;
use tbs_core::grid::{candidate_pairs, prune_stats, GridOptions, RadialBins, UniformGrid};
use tbs_core::kernels::{PackedLayout, PackedPairKernel, PackedSegment};
use tbs_core::output::CountWithinRadius;
use tbs_core::point::SoaPoints;
use tbs_cpu::{
    grid_pcf_device_reference, grid_pcf_reference, grid_radial_reference, pcf_reference,
    sdh_reference,
};

const BOX: f32 = 100.0;

/// The catalog layouts the grid must handle: smooth, heavily skewed,
/// and the degenerate single-cell pile-up.
#[derive(Debug, Clone, Copy)]
enum Layout {
    Uniform,
    Clustered,
    OnePoint,
}

fn catalog(layout: Layout, n: usize, seed: u64) -> SoaPoints<3> {
    match layout {
        Layout::Uniform => tbs_datagen::uniform_points(n, BOX, seed),
        Layout::Clustered => tbs_datagen::clustered_points(n, BOX, 7, 2.5, seed),
        // Every point in one spot: one cell holds everything, all
        // others are empty.
        Layout::OnePoint => SoaPoints::from_points(&vec![[3.0, 4.0, 5.0]; n]),
    }
}

fn layout_strategy() -> impl Strategy<Value = Layout> {
    prop::sample::select(vec![Layout::Uniform, Layout::Clustered, Layout::OnePoint])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CPU oracle: grid-pruned count == all-pairs count, bit for bit,
    /// for any N ∈ [0, 4096], any r_max (including > box), any grid
    /// resolution.
    #[test]
    fn cpu_grid_count_equals_all_pairs(
        n in 0usize..4096,
        r_max in prop::sample::select(vec![0.5f32, 2.0, 5.0, 10.0, 40.0, 120.0, 500.0]),
        target in prop::sample::select(vec![2u32, 16, 512]),
        layout in layout_strategy(),
        seed in 0u64..1_000,
    ) {
        let pts = catalog(layout, n, seed);
        let opts = GridOptions { target_points_per_cell: target, max_cells: 1 << 20 };
        prop_assert_eq!(
            grid_pcf_reference(&pts, r_max, &opts),
            pcf_reference(&pts, r_max)
        );
    }

    /// CPU oracle: grid-pruned radial histogram == all-pairs histogram
    /// under the overflow-bucket spec, bit for bit.
    #[test]
    fn cpu_grid_histogram_equals_all_pairs(
        n in 0usize..2048,
        r_max in prop::sample::select(vec![1.0f32, 6.0, 14.0, 200.0]),
        bins in prop::sample::select(vec![1u32, 5, 32]),
        target in prop::sample::select(vec![8u32, 512]),
        layout in layout_strategy(),
        seed in 0u64..1_000,
    ) {
        let pts = catalog(layout, n, seed);
        let rb = RadialBins::new(bins, r_max);
        let opts = GridOptions { target_points_per_cell: target, max_cells: 1 << 20 };
        let all = sdh_reference(&pts, rb.device_spec());
        prop_assert_eq!(
            grid_radial_reference(&pts, rb, &opts),
            rb.finalize(&all)
        );
    }

    /// Device route: the gridded executor's count equals the monolithic
    /// all-pairs launch AND the CPU oracle (smaller N — each case is a
    /// full simulated-device run).
    #[test]
    fn device_grid_count_equals_all_pairs(
        n in 0usize..1024,
        r_max in prop::sample::select(vec![4.0f32, 12.0, 150.0]),
        layout in layout_strategy(),
        seed in 0u64..1_000,
    ) {
        let pts = catalog(layout, n, seed);
        let plan = PairwisePlan::register_shm(64);
        let opts = GridOptions { target_points_per_cell: 64, max_cells: 1 << 20 };
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(&mut dev, &pts, r_max, &opts);
        let grid = gridded_count_within(&mut dev, &cat, r_max, plan).expect("gridded launch");
        let mut dev2 = Device::new(DeviceConfig::titan_x());
        let all = pcf_gpu(&mut dev2, &pts, r_max, plan).expect("all-pairs launch");
        prop_assert_eq!(grid.count, all.count);
        // Cross-engine: the device predicate is `√dist² < r` (not the
        // CPU comparator's sqrt-free `dist² < r²`), so compare against
        // the device-arithmetic oracle for exactness at any N.
        prop_assert_eq!(grid.count, grid_pcf_device_reference(&pts, r_max, &opts));
    }

    /// Device route: the gridded radial histogram equals the all-pairs
    /// privatized SDH under the overflow spec, finalized identically.
    #[test]
    fn device_grid_histogram_equals_all_pairs(
        n in 2usize..768,
        r_max in prop::sample::select(vec![5.0f32, 15.0, 180.0]),
        bins in prop::sample::select(vec![4u32, 24]),
        layout in layout_strategy(),
        seed in 0u64..1_000,
    ) {
        let pts = catalog(layout, n, seed);
        let rb = RadialBins::new(bins, r_max);
        let plan = PairwisePlan::register_shm(64);
        let opts = GridOptions { target_points_per_cell: 64, max_cells: 1 << 20 };
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(&mut dev, &pts, r_max, &opts);
        let grid = gridded_radial_histogram(&mut dev, &cat, rb, plan).expect("gridded launch");
        let mut dev2 = Device::new(DeviceConfig::titan_x());
        let all = sdh_gpu(&mut dev2, &pts, rb.device_spec(), plan, SdhOutputMode::Privatized)
            .expect("all-pairs launch");
        prop_assert_eq!(grid.histogram, rb.finalize(&all.histogram));
    }

    /// Three-way count identity: the packed segmented route, the
    /// per-cell-pair route, and the monolithic all-pairs launch agree
    /// bit for bit — across clustered/degenerate layouts, one-point
    /// cells (`target = 1`), and cell populations sitting exactly on,
    /// one below, and one above block-size multiples (targets 64, 127,
    /// 128, 129 against the packed planner's 128-minimum blocks).
    #[test]
    fn packed_route_equals_per_cell_pair_and_all_pairs(
        n in 0usize..1024,
        r_max in prop::sample::select(vec![4.0f32, 12.0, 150.0]),
        target in prop::sample::select(vec![1u32, 64, 127, 128, 129]),
        layout in layout_strategy(),
        seed in 0u64..1_000,
    ) {
        let pts = catalog(layout, n, seed);
        let plan = PairwisePlan::register_shm(64);
        let opts = GridOptions { target_points_per_cell: target, max_cells: 1 << 20 };
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(&mut dev, &pts, r_max, &opts);
        let packed = gridded_count_within_routed(&mut dev, &cat, r_max, plan, GriddedRoute::Packed)
            .expect("packed launch");
        let unpacked =
            gridded_count_within_routed(&mut dev, &cat, r_max, plan, GriddedRoute::PerCellPair)
                .expect("per-cell-pair launch");
        prop_assert_eq!(packed.count, unpacked.count);
        let mut dev2 = Device::new(DeviceConfig::titan_x());
        let all = pcf_gpu(&mut dev2, &pts, r_max, plan).expect("all-pairs launch");
        prop_assert_eq!(packed.count, all.count);
        // A multi-radius packed sweep is the same bits again.
        let (multi, _) = gridded_count_within_multi(&mut dev, &cat, &[r_max], plan)
            .expect("multi launch");
        prop_assert_eq!(multi[0], packed.count);
    }

    /// Three-way histogram identity on the same layouts.
    #[test]
    fn packed_histogram_equals_per_cell_pair_and_all_pairs(
        n in 2usize..640,
        r_max in prop::sample::select(vec![5.0f32, 15.0, 180.0]),
        bins in prop::sample::select(vec![4u32, 24]),
        target in prop::sample::select(vec![1u32, 64, 128]),
        layout in layout_strategy(),
        seed in 0u64..1_000,
    ) {
        let pts = catalog(layout, n, seed);
        let rb = RadialBins::new(bins, r_max);
        let plan = PairwisePlan::register_shm(64);
        let opts = GridOptions { target_points_per_cell: target, max_cells: 1 << 20 };
        let mut dev = Device::new(DeviceConfig::titan_x());
        let cat = GriddedCatalog::build_self(&mut dev, &pts, r_max, &opts);
        let packed =
            gridded_radial_histogram_routed(&mut dev, &cat, rb, plan, GriddedRoute::Packed)
                .expect("packed launch");
        let unpacked =
            gridded_radial_histogram_routed(&mut dev, &cat, rb, plan, GriddedRoute::PerCellPair)
                .expect("per-cell-pair launch");
        prop_assert_eq!(&packed.histogram, &unpacked.histogram);
        let mut dev2 = Device::new(DeviceConfig::titan_x());
        let all = sdh_gpu(&mut dev2, &pts, rb.device_spec(), plan, SdhOutputMode::Privatized)
            .expect("all-pairs launch");
        prop_assert_eq!(&packed.histogram, &rb.finalize(&all.histogram));
    }

    /// Candidate enumeration invariants for arbitrary layouts: no cell
    /// pair is visited twice, and the candidate pair mass never exceeds
    /// the all-pairs mass.
    #[test]
    fn candidate_pairs_are_unique_and_bounded(
        n in 0usize..4096,
        r_max in prop::sample::select(vec![1.0f32, 8.0, 300.0]),
        target in prop::sample::select(vec![4u32, 256]),
        layout in layout_strategy(),
        seed in 0u64..1_000,
    ) {
        let pts = catalog(layout, n, seed);
        let opts = GridOptions { target_points_per_cell: target, max_cells: 1 << 20 };
        let grid = UniformGrid::build(&pts, r_max, &opts);
        let pairs = candidate_pairs(&grid);
        let mut seen = std::collections::BTreeSet::new();
        for p in &pairs {
            let key = (p.a.min(p.b), p.a.max(p.b));
            prop_assert!(seen.insert(key), "cell pair {:?} enumerated twice", p);
        }
        let stats = prune_stats(&grid, &pairs);
        prop_assert!(stats.candidate_point_pairs <= stats.total_point_pairs.max(1));
    }
}

/// r_max much larger than the box: the geometry must collapse to a
/// single cell and the executor to exactly one triangular launch —
/// graceful degradation to the monolithic all-pairs route.
#[test]
fn oversized_radius_degrades_to_all_pairs() {
    let pts = tbs_datagen::uniform_points::<3>(700, BOX, 3);
    let grid = UniformGrid::build(&pts, BOX * 10.0, &GridOptions::default());
    assert_eq!(grid.geom.num_cells(), 1);
    let pairs = candidate_pairs(&grid);
    assert_eq!(pairs.len(), 1);
    assert_eq!(
        prune_stats(&grid, &pairs).candidate_point_pairs,
        700 * 699 / 2
    );
    let mut dev = Device::new(DeviceConfig::titan_x());
    let cat = GriddedCatalog::build_self(&mut dev, &pts, BOX * 10.0, &GridOptions::default());
    let got =
        gridded_count_within(&mut dev, &cat, 30.0, PairwisePlan::register_shm(64)).expect("launch");
    assert_eq!(got.run.launches(), 1);
    assert_eq!(
        got.count,
        grid_pcf_device_reference(&pts, 30.0, &GridOptions::default())
    );
}

/// Fault blame parity: a segment whose tile fetch runs off the end of
/// the catalog must raise the *same* out-of-bounds fault whether it
/// runs packed behind healthy segments or as its own solo launch — the
/// packer must not shift or launder the blame, and the healthy
/// segments must not be able to mask the fault.
#[test]
fn fault_blame_parity_between_packed_and_solo_launches() {
    let pts = tbs_datagen::uniform_points::<3>(256, BOX, 5);
    let mut dev = Device::new(DeviceConfig::titan_x());
    let soa = pts.upload(&mut dev);
    let good = PackedSegment::intra(0, 128);
    // Right slice [200, 320) runs 64 elements past the 256-point
    // catalog: every access ≥ 256 faults.
    let bad = PackedSegment::cross(128, 128, 200, 120);
    let b = 128u32;

    let solo_layout = PackedLayout::new(vec![bad], b);
    let solo_lc = solo_layout.launch_config();
    let solo_out = dev.alloc_u64_zeroed(solo_lc.total_threads() as usize);
    let solo_err = dev
        .try_launch(
            &PackedPairKernel::self_join(
                soa,
                Euclidean,
                CountWithinRadius {
                    radius: 1.0,
                    out: solo_out,
                },
                solo_layout,
            ),
            solo_lc,
        )
        .expect_err("solo launch must fault");

    let packed_layout = PackedLayout::new(vec![good, bad], b);
    let packed_lc = packed_layout.launch_config();
    let packed_out = dev.alloc_u64_zeroed(packed_lc.total_threads() as usize);
    let packed_err = dev
        .try_launch(
            &PackedPairKernel::self_join(
                soa,
                Euclidean,
                CountWithinRadius {
                    radius: 1.0,
                    out: packed_out,
                },
                packed_layout,
            ),
            packed_lc,
        )
        .expect_err("packed launch must fault on the bad segment");

    assert_eq!(packed_err, solo_err, "blame must not shift under packing");
    assert!(
        matches!(packed_err, gpu_sim::SimError::OutOfBounds { .. }),
        "{packed_err:?}"
    );

    // And the same healthy segment alone still runs clean.
    let ok_layout = PackedLayout::new(vec![good], b);
    let ok_lc = ok_layout.launch_config();
    let ok_out = dev.alloc_u64_zeroed(ok_lc.total_threads() as usize);
    dev.try_launch(
        &PackedPairKernel::self_join(
            soa,
            Euclidean,
            CountWithinRadius {
                radius: 1.0,
                out: ok_out,
            },
            ok_layout,
        ),
        ok_lc,
    )
    .expect("healthy segment must not fault");
}

/// Mostly-empty grids (tiny N on a fine grid) enumerate only occupied
/// cells and still agree with all-pairs.
#[test]
fn sparse_grids_with_empty_cells_are_exact() {
    let pts = tbs_datagen::uniform_points::<3>(40, BOX, 11);
    let opts = GridOptions {
        target_points_per_cell: 1,
        max_cells: 1 << 20,
    };
    let grid = UniformGrid::build(&pts, 3.0, &opts);
    let stats = prune_stats(&grid, &candidate_pairs(&grid));
    assert!(stats.occupied_cells <= 40);
    assert!(stats.cells >= stats.occupied_cells);
    assert_eq!(
        grid_pcf_reference(&pts, 3.0, &opts),
        pcf_reference(&pts, 3.0)
    );
}

/// All points in one cell of a many-cell grid: the one occupied cell
/// self-joins, every other candidate disappears.
#[test]
fn one_occupied_cell_among_many_is_exact() {
    let pts = SoaPoints::<3>::from_points(
        &(0..256)
            .map(|i| [10.0 + (i % 7) as f32 * 0.1, 10.0, 10.0])
            .collect::<Vec<_>>(),
    );
    // Wide box: pad the grid with a far-away lone point so the fitted
    // box is large while one cell holds nearly everything.
    let mut padded = pts.clone();
    padded.push([95.0, 95.0, 95.0]);
    let opts = GridOptions {
        target_points_per_cell: 2,
        max_cells: 1 << 20,
    };
    let grid = UniformGrid::build(&padded, 2.0, &opts);
    let pairs = candidate_pairs(&grid);
    let stats = prune_stats(&grid, &pairs);
    assert!(stats.pruned_fraction() < 1.0);
    assert_eq!(
        grid_pcf_reference(&padded, 2.0, &opts),
        pcf_reference(&padded, 2.0)
    );
    let rb = RadialBins::new(8, 2.0);
    assert_eq!(
        grid_radial_reference(&padded, rb, &opts),
        rb.finalize(&sdh_reference(&padded, rb.device_spec()))
    );
}
