//! # tbs-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation, each producing
//! the same rows/series the paper reports (see DESIGN.md §4 for the
//! experiment index). The `src/bin/*` binaries print these reports;
//! integration tests run them at reduced sizes; `EXPERIMENTS.md` records
//! paper-vs-measured values.
//!
//! Methodology: series over the paper's N range (512 → 2×10⁶) use the
//! validated closed-form access profiles (`tbs_core::analytic`) fed
//! through the device timing model — the property tests in
//! `tests/it_analytic.rs` prove those profiles equal functional
//! execution; rows that need *functional* artifacts (real histograms,
//! contention measured from data) run the simulator directly at sizes
//! this host can execute.

pub mod experiments;
pub mod report;
pub mod table;

pub use table::Table;

use tbs_core::analytic::Workload;

/// The paper's default pairwise workload shape: 3-D points, Euclidean
/// distance (cost 2·D+1 = 7), B = 1024 threads per block (§IV-B).
pub fn paper_workload(n: u32) -> Workload {
    Workload {
        n,
        b: 1024,
        dims: 3,
        dist_cost: 7,
    }
}

/// Geometric mean of a slice (speedup summaries).
///
/// Returns NaN on an empty slice — callers that feed reports/JSON must
/// use [`try_geomean`], which surfaces the empty case as an error
/// instead of letting NaN leak into serialized metrics.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// [`geomean`] with the empty-series case made explicit. `what` names
/// the series in the error so a misconfigured sweep is diagnosable.
pub fn try_geomean(what: &str, xs: &[f64]) -> Result<f64, report::ReportError> {
    if xs.is_empty() {
        return Err(report::ReportError::EmptySeries {
            what: what.to_string(),
        });
    }
    Ok(geomean(xs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn try_geomean_makes_empty_loud() {
        assert!((try_geomean("s", &[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!(matches!(
            try_geomean("speedups", &[]),
            Err(report::ReportError::EmptySeries { .. })
        ));
    }

    #[test]
    fn paper_workload_shape() {
        let wl = paper_workload(1024 * 100);
        assert_eq!(wl.b, 1024);
        assert_eq!(wl.dist_cost, 7);
        assert!(wl.is_full());
    }
}
