//! Plain-text table rendering for experiment reports.

/// A simple fixed-width table builder for harness output.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with right-aligned numeric-looking columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                if c == 0 {
                    line.push_str(&format!("{:<w$}", cells[c], w = widths[c]));
                } else {
                    line.push_str(&format!("{:>w$}", cells[c], w = widths[c]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds compactly (µs → s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Format a ratio as `12.3x`.
pub fn fmt_x(r: f64) -> String {
    format!("{r:.1}x")
}

/// Format a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.0}%", f * 100.0)
}

/// Format a bandwidth in GB/s or TB/s.
pub fn fmt_bw(gbps: f64) -> String {
    if gbps >= 1000.0 {
        format!("{:.2}TB/s", gbps / 1000.0)
    } else {
        format!("{gbps:.0}GB/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(&["kernel", "time"]);
        t.row(&["naive".into(), "1.00s".into()]);
        t.row(&["register-shm".into(), "0.18s".into()]);
        let s = t.render();
        assert!(s.contains("kernel"));
        assert!(s.lines().count() == 4);
        // All lines equal width for the first column block.
        assert!(s.contains("register-shm"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_bad_rows() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5µs");
        assert_eq!(fmt_x(5.512), "5.5x");
        assert_eq!(fmt_pct(0.52), "52%");
        assert_eq!(fmt_bw(2860.0), "2.86TB/s");
        assert_eq!(fmt_bw(437.0), "437GB/s");
    }
}
