//! **Figure 5** — "Performance of the Reg-ROC-Out kernel under different
//! bin sizes: running time and occupancy."
//!
//! Workload: SDH of 512,000 points while sweeping the histogram size.
//! The paper's observations: (1) running time increases as a *step
//! function* of output size, because the per-block private histogram in
//! shared memory reduces occupancy in steps; (2) very small outputs also
//! degrade performance through atomic contention ("the many threads in
//! the block always compete for accessing an output element").
//!
//! Block size: 256 (the occupancy steps require blocks small enough that
//! several fit one SM — with B = 1024 the shared-memory limit cannot
//! bind before the 48 KB per-block cap).

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::DeviceConfig;
use tbs_core::analytic::{
    predicted_reduction_run, predicted_run, InputPath, KernelSpec, OutputPath, Workload,
};

/// The paper's Figure-5 data size.
pub const FIG5_N: u32 = 512_000;

/// Block size for the occupancy study.
pub const FIG5_BLOCK: u32 = 256;

/// One bucket-count sample.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    pub buckets: u32,
    pub seconds: f64,
    pub occupancy: f64,
}

/// Sweep Reg-ROC-Out over histogram sizes.
pub fn series(buckets: &[u32], n: u32, cfg: &DeviceConfig) -> Vec<Row> {
    buckets
        .iter()
        .map(|&h| {
            let wl = Workload {
                n,
                b: FIG5_BLOCK,
                dims: 3,
                dist_cost: 7,
            };
            let spec = KernelSpec::new(
                InputPath::RegisterRoc,
                OutputPath::SharedHistogram { buckets: h },
            );
            let run = predicted_run(&wl, &spec, cfg);
            let reduce = predicted_reduction_run(h, wl.m() as u32, cfg);
            Row {
                buckets: h,
                seconds: run.seconds() + reduce.seconds(),
                occupancy: run.occupancy.occupancy,
            }
        })
        .collect()
}

/// The default bucket sweep (matching the paper's 0–5000 axis, plus the
/// tiny sizes that expose contention).
pub fn default_buckets() -> Vec<u32> {
    vec![
        16, 32, 64, 128, 256, 512, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000,
    ]
}

/// Build the structured Figure-5 report (table + gate metrics).
pub fn build_report(n: u32, cfg: &DeviceConfig) -> Result<Report, ReportError> {
    let rows = series(&default_buckets(), n, cfg);
    let mut rep = Report::new(
        "fig5",
        "Figure 5 — Reg-ROC-Out SDH vs histogram size: running time and occupancy",
    )
    .with_context(&format!("N = {n}, B = {FIG5_BLOCK}"));

    let mut t = SeriesTable::new("sweep", &["buckets", "time", "occupancy"]);
    for r in &rows {
        t.row(vec![
            Cell::int(r.buckets as u64),
            Cell::secs(r.seconds),
            Cell::pct(r.occupancy),
        ]);
    }
    rep.push_table(t);

    // Gate metrics: the step-function shape (≥ 3 occupancy plateaus)
    // and both ends of the U — big histograms lose occupancy, tiny
    // ones pay atomic contention.
    let plateaus: std::collections::BTreeSet<u64> =
        rows.iter().map(|r| (r.occupancy * 1000.0) as u64).collect();
    rep.metric("occupancy_plateaus", plateaus.len() as f64, "count")?;
    let at = |buckets: u32| -> Result<f64, ReportError> {
        rows.iter()
            .find(|r| r.buckets == buckets)
            .map(|r| r.seconds)
            .ok_or_else(|| ReportError::EmptySeries {
                what: format!("fig5 bucket count {buckets}"),
            })
    };
    rep.metric(
        "time_ratio.buckets5000_over_1000",
        at(5000)? / at(1000)?,
        "ratio",
    )?;
    rep.metric(
        "time_ratio.buckets16_over_1000",
        at(16)? / at(1000)?,
        "ratio",
    )?;

    rep.push_note(
        "paper: time rises as a step function of output size; occupancy falls in\n\
         steps as the shared-memory private histogram grows; very small outputs\n\
         suffer from atomic contention instead.",
    );
    Ok(rep)
}

/// Render the Figure-5 report.
pub fn report(n: u32, cfg: &DeviceConfig) -> String {
    match build_report(n, cfg) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("fig5 report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_falls_in_steps() {
        let cfg = DeviceConfig::titan_x();
        let rows = series(&default_buckets(), FIG5_N, &cfg);
        // Monotone non-increasing occupancy over the growing histogram.
        for w in rows.windows(2) {
            assert!(w[1].occupancy <= w[0].occupancy + 1e-9);
        }
        // There must be at least two distinct occupancy plateaus.
        let distinct: std::collections::BTreeSet<u64> =
            rows.iter().map(|r| (r.occupancy * 1000.0) as u64).collect();
        assert!(distinct.len() >= 3, "steps: {distinct:?}");
        // Large histograms run slower than the mid-range sweet spot.
        let mid = rows.iter().find(|r| r.buckets == 1000).unwrap();
        let big = rows.iter().find(|r| r.buckets == 5000).unwrap();
        assert!(
            big.seconds > mid.seconds,
            "{} vs {}",
            big.seconds,
            mid.seconds
        );
        assert!(big.occupancy < mid.occupancy);
    }

    #[test]
    fn tiny_histograms_pay_contention() {
        // "the kernel also shows degraded performance when the output
        // size is too small".
        let cfg = DeviceConfig::titan_x();
        let rows = series(&[16, 1000], FIG5_N, &cfg);
        assert!(
            rows[0].seconds > rows[1].seconds,
            "16 buckets {} must be slower than 1000 buckets {}",
            rows[0].seconds,
            rows[1].seconds
        );
    }

    #[test]
    fn report_renders() {
        let cfg = DeviceConfig::titan_x();
        let rep = report(256_000, &cfg);
        assert!(rep.contains("occupancy"));
    }
}
