//! **Figure 4** — "Performance of different GPU-based algorithms for
//! computing SDH: total running time and speedup over CPU algorithm."
//!
//! Workload: spatial distance histogram, 3-D uniform points, B = 1024.
//! Series: the CPU baseline; Register-SHM standing in for the three
//! non-privatized kernels ("the three kernels without the output
//! privatization technique run almost at the same speed"); and the three
//! output-privatized kernels Naive-Out, Reg-SHM-Out, Reg-ROC-Out
//! (privatized times include the Figure-3 reduction kernel).
//!
//! Paper's reported shape: privatization wins ~an order of magnitude
//! (Reg-ROC-Out ≈ 11× Register-SHM); Reg-ROC-Out best overall at ≈ 50×
//! the CPU; even the least-optimized GPU kernel beats the CPU (≈ 3.5×).

use crate::paper_workload;
use crate::report::{Cell, Report, ReportError, SeriesTable};
use crate::table::fmt_x;
use gpu_sim::DeviceConfig;
use tbs_core::analytic::{
    predicted_reduction_run, predicted_run, InputPath, KernelSpec, OutputPath,
};
use tbs_cpu::CpuModel;

/// Histogram size used throughout the SDH experiments: 4096 buckets =
/// 16 KB per private copy ("tens of kilobytes", §IV-D).
pub const SDH_BUCKETS: u32 = 4096;

/// One N point of the sweep.
#[derive(Debug, Clone)]
pub struct Row {
    pub n: u32,
    pub cpu: f64,
    /// Register-SHM with direct global-atomic output.
    pub register_shm: f64,
    /// Privatized-output kernels (pair stage + reduction).
    pub naive_out: f64,
    pub reg_shm_out: f64,
    pub reg_roc_out: f64,
}

/// Predict the Figure-4 series.
pub fn series(sizes: &[u32], cfg: &DeviceConfig, cpu: &CpuModel) -> Vec<Row> {
    let priv_out = OutputPath::SharedHistogram {
        buckets: SDH_BUCKETS,
    };
    let glob_out = OutputPath::GlobalHistogram {
        buckets: SDH_BUCKETS,
    };
    sizes
        .iter()
        .map(|&n| {
            let wl = paper_workload(n);
            let reduction = predicted_reduction_run(SDH_BUCKETS, wl.m() as u32, cfg).seconds();
            let privatized = |input| {
                predicted_run(&wl, &KernelSpec::new(input, priv_out), cfg).seconds() + reduction
            };
            Row {
                n,
                cpu: cpu.seconds(n as u64),
                register_shm: predicted_run(
                    &wl,
                    &KernelSpec::new(InputPath::RegisterShm, glob_out),
                    cfg,
                )
                .seconds(),
                naive_out: privatized(InputPath::Naive),
                reg_shm_out: privatized(InputPath::RegisterShm),
                reg_roc_out: privatized(InputPath::RegisterRoc),
            }
        })
        .collect()
}

/// Build the structured Figure-4 report (tables + gate metrics).
pub fn build_report(
    sizes: &[u32],
    cfg: &DeviceConfig,
    cpu: &CpuModel,
) -> Result<Report, ReportError> {
    let rows = series(sizes, cfg, cpu);
    let mut rep = Report::new(
        "fig4",
        "Figure 4 — SDH: total running time and speedup over the CPU algorithm",
    )
    .with_context(
        "uniform 3-D points, B = 1024, 4096-bucket histogram; privatized \
         kernels include the Figure-3 reduction stage",
    );

    let mut t = SeriesTable::new(
        "times",
        &[
            "N",
            "CPU",
            "Register-SHM",
            "Naive-Out",
            "Reg-SHM-Out",
            "Reg-ROC-Out",
        ],
    );
    for r in &rows {
        t.row(vec![
            Cell::int(r.n as u64),
            Cell::secs(r.cpu),
            Cell::secs(r.register_shm),
            Cell::secs(r.naive_out),
            Cell::secs(r.reg_shm_out),
            Cell::secs(r.reg_roc_out),
        ]);
    }
    rep.push_table(t);

    let mut s = SeriesTable::new(
        "speedups_over_cpu",
        &[
            "N",
            "Register-SHM",
            "Naive-Out",
            "Reg-SHM-Out",
            "Reg-ROC-Out",
        ],
    );
    for r in &rows {
        s.row(vec![
            Cell::int(r.n as u64),
            Cell::x(r.cpu / r.register_shm),
            Cell::x(r.cpu / r.naive_out),
            Cell::x(r.cpu / r.reg_shm_out),
            Cell::x(r.cpu / r.reg_roc_out),
        ]);
    }
    rep.push_table(s);

    let last = rows.last().ok_or_else(|| ReportError::EmptySeries {
        what: "fig4 sweep".to_string(),
    })?;
    rep.metric(
        "privatization_gain.at_max_n",
        last.register_shm / last.reg_roc_out,
        "x",
    )?;
    rep.metric(
        "best_gpu_over_cpu.at_max_n",
        last.cpu / last.reg_roc_out,
        "x",
    )?;
    rep.metric(
        "register_shm_over_cpu.at_max_n",
        last.cpu / last.register_shm,
        "x",
    )?;
    rep.push_note(&format!(
        "at N = {}: Reg-ROC-Out is {} as fast as Register-SHM (paper: ~11x)\n\
         best-GPU over CPU: {} (paper: ~50x); Register-SHM over CPU: {} (paper: ~3.5x)",
        last.n,
        fmt_x(last.register_shm / last.reg_roc_out),
        fmt_x(last.cpu / last.reg_roc_out),
        fmt_x(last.cpu / last.register_shm),
    ));
    Ok(rep)
}

/// Render the full Figure-4 report.
pub fn report(sizes: &[u32], cfg: &DeviceConfig, cpu: &CpuModel) -> String {
    match build_report(sizes, cfg, cpu) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("fig4 report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbs_datagen::paper_sweep;

    #[test]
    fn shape_matches_paper_claims() {
        let cfg = DeviceConfig::titan_x();
        let cpu = CpuModel::xeon_e5_2640_v2();
        let sizes = paper_sweep(5, 1024);
        let rows = series(&sizes, &cfg, &cpu);
        for r in rows.iter().filter(|r| r.n >= 400_000) {
            // Privatization ~order of magnitude (paper 11×; accept 5–20×).
            let priv_gain = r.register_shm / r.reg_roc_out;
            assert!(
                (5.0..20.0).contains(&priv_gain),
                "priv gain {priv_gain} at N={}",
                r.n
            );
            // Reg-ROC-Out is the best kernel.
            assert!(
                r.reg_roc_out <= r.reg_shm_out * 1.001,
                "ROC-out best at N={}",
                r.n
            );
            assert!(
                r.reg_roc_out < r.naive_out,
                "ROC-out beats naive-out at N={}",
                r.n
            );
            // Best GPU ≈ 50× CPU (accept 25–100×).
            let best = r.cpu / r.reg_roc_out;
            assert!(
                (25.0..100.0).contains(&best),
                "best-vs-CPU {best} at N={}",
                r.n
            );
            // Every GPU kernel beats the CPU.
            assert!(
                r.cpu / r.register_shm > 1.5,
                "even global-atomic SDH beats CPU"
            );
        }
    }

    #[test]
    fn report_renders() {
        let cfg = DeviceConfig::titan_x();
        let cpu = CpuModel::xeon_e5_2640_v2();
        let rep = report(&[409_600], &cfg, &cpu);
        assert!(rep.contains("Reg-ROC-Out"));
        assert!(rep.contains("paper"));
    }
}
