//! **Extension: architecture study** — how the winning technique shifts
//! across GPU generations (Fermi → Kepler → Maxwell).
//!
//! The paper (§III-A) notes that each architecture generation adds
//! features (Kepler's shuffle, Maxwell's larger shared memory) and its
//! §V future work asks for models that adapt to "more environmental and
//! kernel features". This study runs the same 2-PCF workload through the
//! analytical model on all three device presets and reports each
//! kernel's speedup over Naive — showing, e.g., that shuffle tiling only
//! exists from Kepler on and that slow Fermi atomics change the
//! privatization payoff.

use crate::paper_workload;
use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::DeviceConfig;
use tbs_core::analytic::{predicted_run, InputPath, KernelSpec, OutputPath};

/// Per-device kernel times for one N.
#[derive(Debug, Clone)]
pub struct DeviceRow {
    pub device: &'static str,
    /// (kernel name, seconds); shuffle omitted where unsupported.
    pub kernels: Vec<(&'static str, f64)>,
}

/// Evaluate the 2-PCF kernel family on every device preset.
pub fn series(n: u32) -> Vec<DeviceRow> {
    let wl = paper_workload(n);
    [
        DeviceConfig::fermi_gtx580(),
        DeviceConfig::kepler_k40(),
        DeviceConfig::titan_x(),
    ]
    .into_iter()
    .map(|cfg| {
        let mut kernels = Vec::new();
        for (name, input) in [
            ("naive", InputPath::Naive),
            ("shm-shm", InputPath::ShmShm),
            ("register-shm", InputPath::RegisterShm),
            ("register-roc", InputPath::RegisterRoc),
            ("shuffle", InputPath::Shuffle),
        ] {
            if input == InputPath::Shuffle && !cfg.has_shuffle {
                continue;
            }
            let run = predicted_run(
                &wl,
                &KernelSpec::new(input, OutputPath::RegisterCount),
                &cfg,
            );
            kernels.push((name, run.seconds()));
        }
        DeviceRow {
            device: cfg.name,
            kernels,
        }
    })
    .collect()
}

/// Build the structured architecture-study report.
pub fn build_report(n: u32) -> Result<Report, ReportError> {
    let rows = series(n);
    let mut rep = Report::new("ext_arch", "Extension — 2-PCF across GPU generations")
        .with_context(&format!("N = {n}"));

    let mut t = SeriesTable::new("devices", &["device", "kernel", "time", "speedup vs naive"]);
    let mut tiling_gain_min = f64::INFINITY;
    let mut best_times = Vec::new();
    for r in &rows {
        let find = |k: &str| -> Result<f64, ReportError> {
            r.kernels
                .iter()
                .find(|(name, _)| *name == k)
                .map(|&(_, s)| s)
                .ok_or_else(|| ReportError::EmptySeries {
                    what: format!("ext_arch kernel `{k}` on {}", r.device),
                })
        };
        let naive = find("naive")?;
        for (k, secs) in &r.kernels {
            t.row(vec![
                Cell::text(r.device),
                Cell::text(*k),
                Cell::secs(*secs),
                Cell::x(naive / secs),
            ]);
        }
        tiling_gain_min = tiling_gain_min.min(naive / find("register-shm")?);
        best_times.push(
            r.kernels
                .iter()
                .map(|&(_, s)| s)
                .fold(f64::INFINITY, f64::min),
        );
    }
    rep.push_table(t);

    rep.metric("tiling_gain.min_across_devices", tiling_gain_min, "x")?;
    if best_times.len() == 3 {
        // Index order follows `series`: Fermi, Kepler, Maxwell.
        rep.metric(
            "best_time_ratio.fermi_over_kepler",
            best_times[0] / best_times[1],
            "ratio",
        )?;
        rep.metric(
            "best_time_ratio.kepler_over_maxwell",
            best_times[1] / best_times[2],
            "ratio",
        )?;
    }
    rep.push_note(
        "notes: shuffle tiling requires Kepler+; newer generations widen the\n\
         tiled-vs-naive gap as arithmetic throughput outgrows memory latency.",
    );
    Ok(rep)
}

/// Render the architecture-study report.
pub fn report(n: u32) -> String {
    match build_report(n) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("ext_arch report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_has_no_shuffle_kernel() {
        let rows = series(256 * 1024);
        assert!(rows[0].device.contains("Fermi"));
        assert!(rows[0].kernels.iter().all(|(k, _)| *k != "shuffle"));
        assert!(rows[1].kernels.iter().any(|(k, _)| *k == "shuffle"));
        assert!(rows[2].kernels.iter().any(|(k, _)| *k == "shuffle"));
    }

    #[test]
    fn tiling_wins_on_every_generation() {
        for r in series(256 * 1024) {
            let naive = r.kernels.iter().find(|(k, _)| *k == "naive").unwrap().1;
            let reg = r
                .kernels
                .iter()
                .find(|(k, _)| *k == "register-shm")
                .unwrap()
                .1;
            assert!(
                naive / reg > 1.5,
                "{}: tiling must win ({})",
                r.device,
                naive / reg
            );
        }
    }

    #[test]
    fn newer_devices_are_absolutely_faster() {
        let rows = series(512 * 1024);
        let best = |r: &DeviceRow| {
            r.kernels
                .iter()
                .map(|&(_, s)| s)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(best(&rows[2]) < best(&rows[1]), "Maxwell beats Kepler");
        assert!(best(&rows[1]) < best(&rows[0]), "Kepler beats Fermi");
    }

    #[test]
    fn report_renders() {
        let rep = report(128 * 1024);
        assert!(rep.contains("Fermi") && rep.contains("Kepler") && rep.contains("Maxwell"));
    }
}
