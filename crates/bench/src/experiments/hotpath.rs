//! **Host throughput** — wall-clock cost of the simulator interpreter
//! itself, across its four routes: the retained scalar reference, the
//! vectorized op-by-op fast paths
//! (`with_compiled(false).with_fused_tile(false)`), fused tile passes
//! (`with_compiled(false)`), and the shipping default — the
//! plan-compiled route that lowers whole kernel plans, Type-II output
//! stage included, to closed-form host passes.
//!
//! Unlike every other experiment, this one measures *this machine*, not
//! the modeled GPU: it runs two workloads through the functional
//! simulator once per route — the fig2-style 2-PCF (Type-I output) and
//! a privatized SDH on the Register-SHM plan (Type-II output: histogram
//! scatters in the inner loop plus the Figure-3 cross-copy reduction) —
//! asserts all routes are bit-identical (pair count / histogram, full
//! `AccessTally`, simulated timing), and reports wall-clock times plus
//! the per-route interpreter statistics (dispatch count, fused/compiled
//! lane coverage, cache-memo hit rate).
//!
//! Every route runs under the config-default block executor
//! (`ExecMode::Parallel { threads: 0 }`); one extra sequential run of
//! the fused route cross-checks that the speculative parallel engine is
//! bit-identical to the reference block order, and both wall-clock
//! times land in the JSON record.
//!
//! The scalar reference is quadratic in wall-clock pain; above
//! [`SCALAR_CEILING`] only the vectorized, fused and compiled routes run
//! (identity against the scalar route is established at the sizes below
//! it).
//!
//! The `hotpath_baseline` bin prints it and records
//! `BENCH_sim_hotpath.json`; the perf gate pins generous floors on a
//! reduced size (see `report::gate`, group `host`).

use std::time::Instant;

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::config::ExecMode;
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{pcf_gpu, sdh_gpu, PairwisePlan, PcfResult, SdhOutputMode, SdhResult};
use tbs_core::histogram::HistogramSpec;
use tbs_datagen::uniform_points;

/// Workload constants, fixed so every measurement is comparable.
pub const RADIUS: f32 = 25.0;
pub const BOX: f32 = 100.0;
pub const SEED: u64 = 11;
pub const BLOCK: u32 = 1024;

/// Largest N the scalar-reference route is run at (it is ~10× slower
/// than the fused route and exists only as the correctness anchor).
pub const SCALAR_CEILING: usize = 131_072;

/// Histogram size for the Type-II (SDH) workload: one private `u32`
/// copy is 1 KiB of shared memory, small next to the 12 KiB point tile.
pub const SDH_BUCKETS: u32 = 256;

/// The Type-II histogram spec: `SDH_BUCKETS` buckets over the box
/// diagonal, so every pair distance bins without clamping.
pub fn sdh_spec() -> HistogramSpec {
    HistogramSpec::new(SDH_BUCKETS, tbs_datagen::box_diagonal(BOX, 3))
}

/// The block executor every measured pass runs under: the config
/// default (parallel, one worker per host core). The fused route gets
/// one extra [`ExecMode::Sequential`] pass as the engine cross-check.
pub fn bench_exec() -> ExecMode {
    ExecMode::Parallel { threads: 0 }
}

#[derive(Clone, Copy, PartialEq)]
enum Route {
    Scalar,
    Vectorized,
    Fused,
    Compiled,
}

/// One problem size's per-route measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    pub n: usize,
    pub pair_count: u64,
    /// Wall-clock seconds with the scalar-reference interpreter
    /// (`None` above [`SCALAR_CEILING`] or when a budget projection
    /// skipped it).
    pub scalar_s: Option<f64>,
    /// Wall-clock seconds with the vectorized fast paths, fusion off
    /// (`None` when a budget projection skipped the route).
    pub fast_s: Option<f64>,
    /// Wall-clock seconds with fused tile passes (`with_compiled(false)`).
    pub fused_s: f64,
    /// Wall-clock seconds of the fused route under the sequential block
    /// executor — the engine cross-check (everything else runs under
    /// [`bench_exec`]; `None` when a budget projection skipped it).
    pub fused_seq_s: Option<f64>,
    /// Wall-clock seconds with the plan-compiled route (the shipping
    /// default).
    pub compiled_s: f64,
    /// Executed lane slots (useful + predicated) — the work measure
    /// behind the throughput numbers.
    pub lane_ops: u64,
    pub sim_cycles: f64,
    /// Interpreter dispatches on the fused route (each fused tile pass
    /// is one dispatch where the op-by-op route takes thousands).
    pub dispatches: u64,
    /// Fused tile passes taken.
    pub fused_ops: u64,
    /// Fraction of useful lane work executed inside fused passes.
    pub fused_coverage: f64,
    /// Compiled straight-line passes taken (compiled route).
    pub compiled_ops: u64,
    /// Fraction of useful lane work absorbed by compiled passes
    /// (compiled route).
    pub compiled_coverage: f64,
    /// Generation-stamped cache-memo hit rate (replayed / probed runs).
    pub memo_hit_rate: f64,
}

impl Sample {
    /// Scalar-reference over vectorized — PR 2's original claim.
    pub fn speedup(&self) -> Option<f64> {
        Some(self.scalar_s? / self.fast_s?)
    }

    /// Scalar-reference over fused — the full interpreter stack.
    pub fn fused_speedup(&self) -> Option<f64> {
        self.scalar_s.map(|s| s / self.fused_s)
    }

    /// Vectorized over fused — what fusion alone buys.
    pub fn fused_vs_vectorized(&self) -> Option<f64> {
        self.fast_s.map(|f| f / self.fused_s)
    }

    /// Fused over compiled — what plan compilation buys on top of the
    /// shipping fused route.
    pub fn compiled_vs_fused(&self) -> f64 {
        self.fused_s / self.compiled_s
    }

    /// Sequential over parallel wall-clock on the fused route: > 1 when
    /// the parallel engine wins, and pinned by a generous no-regression
    /// floor in the gate (single-core hosts pay speculation overhead but
    /// must stay close to sequential).
    pub fn parallel_vs_sequential(&self) -> Option<f64> {
        self.fused_seq_s.map(|q| q / self.fused_s)
    }

    /// Lane throughput of the fused route.
    pub fn lane_ops_per_s(&self) -> f64 {
        self.lane_ops as f64 / self.fused_s
    }

    pub fn sim_cycles_per_s(&self) -> f64 {
        self.sim_cycles / self.fused_s
    }
}

/// Per-route projected wall-clock at a new size `n`, extrapolated from
/// a previously measured (smaller) [`Sample`]. Every route walks the
/// full O(N²) pair grid, so a route's wall-clock scales quadratically:
/// `prev_s · (n / prev_n)²`. A `None` per route means the prior sample
/// skipped it, leaving nothing to extrapolate from.
#[derive(Debug, Clone, Copy, Default)]
pub struct Projection {
    pub fused: Option<f64>,
    pub fused_seq: Option<f64>,
    pub compiled: Option<f64>,
    pub vectorized: Option<f64>,
    pub scalar: Option<f64>,
}

impl Projection {
    pub fn from_sample(prev: &Sample, n: usize) -> Self {
        let s = n as f64 / prev.n.max(1) as f64;
        let scale = s * s;
        Projection {
            fused: Some(prev.fused_s * scale),
            fused_seq: prev.fused_seq_s.map(|v| v * scale),
            compiled: Some(prev.compiled_s * scale),
            vectorized: prev.fast_s.map(|v| v * scale),
            scalar: prev.scalar_s.map(|v| v * scale),
        }
    }

    fn fmt(v: Option<f64>) -> String {
        v.map_or_else(|| "?".to_string(), |p| format!("~{p:.1}s"))
    }

    /// Print the estimates before any route launches — the whole point
    /// is that a doomed sweep announces itself instead of hanging.
    fn announce(&self, what: &str, n: usize, prev_n: usize) {
        eprintln!(
            "{what}N={n}: projected from N={prev_n} (quadratic): fused {}, sequential {}, \
             compiled {}, vectorized {}, scalar {}",
            Self::fmt(self.fused),
            Self::fmt(self.fused_seq),
            Self::fmt(self.compiled),
            Self::fmt(self.vectorized),
            Self::fmt(self.scalar),
        );
    }
}

/// True — with a loud note — when a route's projection exceeds the
/// budget and it must be skipped rather than allowed to hang the sweep.
fn budget_skips(
    what: &str,
    n: usize,
    route: &str,
    projected: Option<f64>,
    budget_secs: Option<f64>,
) -> bool {
    let (Some(p), Some(b)) = (projected, budget_secs) else {
        return false;
    };
    if p <= b {
        return false;
    }
    eprintln!(
        "{what}N={n}: SKIPPING {route} route — projected {p:.1}s exceeds --budget-secs {b:.1}"
    );
    true
}

fn route_config(route: Route, exec: ExecMode) -> DeviceConfig {
    let cfg = DeviceConfig::titan_x().with_exec_mode(exec);
    match route {
        Route::Scalar => cfg.with_scalar_reference(true),
        Route::Vectorized => cfg.with_compiled(false).with_fused_tile(false),
        Route::Fused => cfg.with_compiled(false),
        Route::Compiled => cfg, // compiled is the preset default
    }
}

/// One small untimed launch per engine before any timed pass: the very
/// first launch in a process pays one-off costs (thread spin-up, heap
/// growth, cold i-cache) that would otherwise be billed to whichever
/// route happens to run first and skew its ratios.
fn warm_up() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let pts = uniform_points::<3>(4096, BOX, SEED);
        for exec in [bench_exec(), ExecMode::Sequential] {
            let mut dev = Device::new(route_config(Route::Fused, exec));
            pcf_gpu(&mut dev, &pts, RADIUS, PairwisePlan::register_shm(BLOCK)).expect("warm-up");
        }
    });
}

fn run_once(n: usize, route: Route, exec: ExecMode) -> (f64, PcfResult) {
    let pts = uniform_points::<3>(n, BOX, SEED);
    let mut dev = Device::new(route_config(route, exec));
    let t = Instant::now();
    let r = pcf_gpu(&mut dev, &pts, RADIUS, PairwisePlan::register_shm(BLOCK)).expect("launch");
    (t.elapsed().as_secs_f64(), r)
}

fn assert_routes_identical(n: usize, a: &PcfResult, b: &PcfResult, what: &str) {
    assert_eq!(a.count, b.count, "pair count diverged ({what}) at N={n}");
    assert_eq!(a.run.tally, b.run.tally, "tally diverged ({what}) at N={n}");
    assert_eq!(
        a.run.timing.seconds.to_bits(),
        b.run.timing.seconds.to_bits(),
        "simulated time diverged ({what}) at N={n}"
    );
}

/// Measure one size, asserting every interpreter route is bit-identical
/// (same pair count, tally and simulated timing), and that the parallel
/// block executor matches a sequential run of the same route.
pub fn measure(n: usize) -> Sample {
    measure_budgeted(n, None, None)
}

/// [`measure`] with the O(N²) footgun defused: when `prev` (a measured
/// smaller size) is available, per-route quadratic wall-clock
/// projections are printed *before* anything launches, and when
/// `budget_secs` is set, any comparison route (scalar reference,
/// vectorized, sequential cross-check) projected over the budget is
/// skipped with a loud note instead of silently hanging the sweep. The
/// fused and compiled routes are the subject of the benchmark and
/// always run.
pub fn measure_budgeted(n: usize, budget_secs: Option<f64>, prev: Option<&Sample>) -> Sample {
    warm_up();
    let proj = prev.map_or_else(Projection::default, |p| Projection::from_sample(p, n));
    if let Some(p) = prev {
        proj.announce("", n, p.n);
    }
    eprintln!("N={n}: fused pass...");
    let (fused_s, fused) = run_once(n, Route::Fused, bench_exec());
    eprintln!("N={n}: fused {fused_s:.3}s");
    let fused_seq_s = if budget_skips("", n, "sequential cross-check", proj.fused_seq, budget_secs)
    {
        None
    } else {
        eprintln!("N={n}: sequential cross-check...");
        let (fused_seq_s, fused_seq) = run_once(n, Route::Fused, ExecMode::Sequential);
        eprintln!(
            "N={n}: sequential {fused_seq_s:.3}s ({:.2}x from parallel)",
            fused_seq_s / fused_s
        );
        assert_routes_identical(n, &fused, &fused_seq, "parallel vs sequential engine");
        Some(fused_seq_s)
    };
    eprintln!("N={n}: compiled pass...");
    let (compiled_s, compiled) = run_once(n, Route::Compiled, bench_exec());
    eprintln!(
        "N={n}: compiled {compiled_s:.3}s ({:.2}x over fused)",
        fused_s / compiled_s
    );
    assert_routes_identical(n, &fused, &compiled, "fused vs compiled");
    let fast_s = if budget_skips("", n, "vectorized", proj.vectorized, budget_secs) {
        None
    } else {
        eprintln!("N={n}: vectorized (unfused) pass...");
        let (fast_s, fast) = run_once(n, Route::Vectorized, bench_exec());
        eprintln!(
            "N={n}: vectorized {fast_s:.3}s ({:.2}x from fusion)",
            fast_s / fused_s
        );
        assert_routes_identical(n, &fused, &fast, "fused vs vectorized");
        assert_eq!(
            fast.run.interp.fused_ops + fast.run.interp.compiled_ops,
            0,
            "op-by-op leg took a fast path at N={n}"
        );
        Some(fast_s)
    };
    assert!(
        fused.run.interp.fused_ops > 0,
        "fused leg took no fused tile passes at N={n}"
    );
    assert!(
        compiled.run.interp.compiled_ops > 0,
        "compiled (default) route took no compiled passes at N={n}"
    );
    assert_eq!(
        fused.run.interp.compiled_ops, 0,
        "fused leg compiled despite with_compiled(false) at N={n}"
    );
    // The no-regression floor the issue pins: plan compilation must
    // never cost the 2-PCF workload more than measurement noise.
    assert!(
        fused_s / compiled_s >= 0.95,
        "compiled 2-PCF regressed below the 0.95x floor at N={n}: \
         fused {fused_s:.3}s vs compiled {compiled_s:.3}s"
    );

    let scalar_s = if n > SCALAR_CEILING {
        eprintln!("N={n}: scalar-reference pass skipped (> SCALAR_CEILING)");
        None
    } else if budget_skips("", n, "scalar-reference", proj.scalar, budget_secs) {
        None
    } else {
        eprintln!("N={n}: scalar-reference pass...");
        let (scalar_s, scalar) = run_once(n, Route::Scalar, bench_exec());
        eprintln!("N={n}: scalar {scalar_s:.3}s ({:.2}x)", scalar_s / fused_s);
        assert_routes_identical(n, &fused, &scalar, "fused vs scalar");
        Some(scalar_s)
    };

    let t = &fused.run.tally;
    let interp = &fused.run.interp;
    let cinterp = &compiled.run.interp;
    Sample {
        n,
        pair_count: fused.count,
        scalar_s,
        fast_s,
        fused_s,
        fused_seq_s,
        compiled_s,
        lane_ops: t.useful_lane_ops + t.predicated_lane_slots,
        sim_cycles: fused.run.timing.cycles,
        dispatches: interp.dispatches,
        fused_ops: interp.fused_ops,
        fused_coverage: interp.fused_coverage(t),
        compiled_ops: cinterp.compiled_ops,
        compiled_coverage: cinterp.compiled_coverage(&compiled.run.tally),
        memo_hit_rate: interp.memo_hit_rate(),
    }
}

fn run_sdh_once(n: usize, route: Route, exec: ExecMode) -> (f64, SdhResult) {
    let pts = uniform_points::<3>(n, BOX, SEED);
    let mut dev = Device::new(route_config(route, exec));
    let t = Instant::now();
    let r = sdh_gpu(
        &mut dev,
        &pts,
        sdh_spec(),
        PairwisePlan::register_shm(BLOCK),
        SdhOutputMode::Privatized,
    )
    .expect("launch");
    (t.elapsed().as_secs_f64(), r)
}

fn assert_sdh_identical(n: usize, a: &SdhResult, b: &SdhResult, what: &str) {
    assert_eq!(
        a.histogram, b.histogram,
        "histogram diverged ({what}) at N={n}"
    );
    assert_eq!(
        a.pair_run.tally, b.pair_run.tally,
        "pair tally diverged ({what}) at N={n}"
    );
    assert_eq!(
        a.pair_run.timing.seconds.to_bits(),
        b.pair_run.timing.seconds.to_bits(),
        "pair simulated time diverged ({what}) at N={n}"
    );
    let ra = a.reduce_run.as_ref().expect("privatized SDH reduces");
    let rb = b.reduce_run.as_ref().expect("privatized SDH reduces");
    assert_eq!(
        ra.tally, rb.tally,
        "reduce tally diverged ({what}) at N={n}"
    );
    assert_eq!(
        ra.timing.seconds.to_bits(),
        rb.timing.seconds.to_bits(),
        "reduce simulated time diverged ({what}) at N={n}"
    );
}

/// Measure the Type-II (SDH, Register-SHM-Out, privatized) workload at
/// one size, asserting every interpreter route produces bit-identical
/// histograms, tallies and simulated timing for *both* kernels (the
/// pairwise scatter stage and the Figure-3 reduction).
pub fn measure_sdh(n: usize) -> Sample {
    measure_sdh_budgeted(n, None, None)
}

/// [`measure_sdh`] with the same budget guard as [`measure_budgeted`]:
/// projections announced up front, over-budget comparison routes
/// skipped loudly, the fused and compiled routes always measured.
pub fn measure_sdh_budgeted(n: usize, budget_secs: Option<f64>, prev: Option<&Sample>) -> Sample {
    warm_up();
    let proj = prev.map_or_else(Projection::default, |p| Projection::from_sample(p, n));
    if let Some(p) = prev {
        proj.announce("SDH ", n, p.n);
    }
    eprintln!("SDH N={n}: fused pass...");
    let (fused_s, fused) = run_sdh_once(n, Route::Fused, bench_exec());
    eprintln!("SDH N={n}: fused {fused_s:.3}s");
    let fused_seq_s = if budget_skips(
        "SDH ",
        n,
        "sequential cross-check",
        proj.fused_seq,
        budget_secs,
    ) {
        None
    } else {
        eprintln!("SDH N={n}: sequential cross-check...");
        let (fused_seq_s, fused_seq) = run_sdh_once(n, Route::Fused, ExecMode::Sequential);
        eprintln!(
            "SDH N={n}: sequential {fused_seq_s:.3}s ({:.2}x from parallel)",
            fused_seq_s / fused_s
        );
        assert_sdh_identical(n, &fused, &fused_seq, "parallel vs sequential engine");
        Some(fused_seq_s)
    };
    eprintln!("SDH N={n}: compiled pass...");
    let (compiled_s, compiled) = run_sdh_once(n, Route::Compiled, bench_exec());
    eprintln!(
        "SDH N={n}: compiled {compiled_s:.3}s ({:.2}x over fused)",
        fused_s / compiled_s
    );
    assert_sdh_identical(n, &fused, &compiled, "fused vs compiled");
    let fast_s = if budget_skips("SDH ", n, "vectorized", proj.vectorized, budget_secs) {
        None
    } else {
        eprintln!("SDH N={n}: vectorized (unfused) pass...");
        let (fast_s, fast) = run_sdh_once(n, Route::Vectorized, bench_exec());
        eprintln!(
            "SDH N={n}: vectorized {fast_s:.3}s ({:.2}x from fusion)",
            fast_s / fused_s
        );
        assert_sdh_identical(n, &fused, &fast, "fused vs vectorized");
        assert_eq!(
            fast.pair_run.interp.fused_ops
                + fast.pair_run.interp.compiled_ops
                + fast.reduce_run.as_ref().map_or(0, |r| r.interp.fused_ops),
            0,
            "op-by-op leg took a fast path on the SDH at N={n}"
        );
        Some(fast_s)
    };
    assert!(
        fused.pair_run.interp.fused_ops > 0,
        "fused leg took no fused histogram tile passes at N={n}"
    );
    // The compiled histogram sink lowers the whole inter-tile pass —
    // sqrt-free bucketing plus closed-form scatter accounting — so the
    // SDH must run compiled end-to-end, not just its tile fetches.
    assert!(
        compiled.pair_run.interp.compiled_ops > 0,
        "compiled (default) route took no compiled passes on the SDH at N={n}"
    );
    assert_eq!(
        fused.pair_run.interp.compiled_ops, 0,
        "fused SDH leg compiled despite with_compiled(false) at N={n}"
    );
    assert!(
        fused
            .reduce_run
            .as_ref()
            .expect("privatized SDH reduces")
            .interp
            .fused_ops
            > 0,
        "fused leg took no packed cross-copy reductions at N={n}"
    );
    assert!(
        compiled
            .reduce_run
            .as_ref()
            .expect("privatized SDH reduces")
            .interp
            .compiled_ops
            > 0,
        "compiled route took no compiled cross-copy reductions at N={n}"
    );
    // The issue's headline floor: with the output stage compiled
    // end-to-end, the SDH must clear 2x over the fused route at the
    // benchmark's headline sizes.
    if n == 16_384 || n == 65_536 {
        assert!(
            fused_s / compiled_s >= 2.0,
            "compiled SDH below the 2x floor at N={n}: \
             fused {fused_s:.3}s vs compiled {compiled_s:.3}s"
        );
    }

    let scalar_s = if n > SCALAR_CEILING {
        eprintln!("SDH N={n}: scalar-reference pass skipped (> SCALAR_CEILING)");
        None
    } else if budget_skips("SDH ", n, "scalar-reference", proj.scalar, budget_secs) {
        None
    } else {
        eprintln!("SDH N={n}: scalar-reference pass...");
        let (scalar_s, scalar) = run_sdh_once(n, Route::Scalar, bench_exec());
        eprintln!(
            "SDH N={n}: scalar {scalar_s:.3}s ({:.2}x)",
            scalar_s / fused_s
        );
        assert_sdh_identical(n, &fused, &scalar, "fused vs scalar");
        Some(scalar_s)
    };

    // Fold both kernels into one sample: the Type-II claim is about the
    // whole output stage (inner-loop scatters + cross-copy reduction).
    let mut tally = fused.pair_run.tally.clone();
    let mut interp = fused.pair_run.interp.clone();
    let mut sim_cycles = fused.pair_run.timing.cycles;
    if let Some(r) = &fused.reduce_run {
        tally.merge(&r.tally);
        interp.merge(&r.interp);
        sim_cycles += r.timing.cycles;
    }
    let mut ctally = compiled.pair_run.tally.clone();
    let mut cinterp = compiled.pair_run.interp.clone();
    if let Some(r) = &compiled.reduce_run {
        ctally.merge(&r.tally);
        cinterp.merge(&r.interp);
    }
    Sample {
        n,
        pair_count: fused.histogram.total(),
        scalar_s,
        fast_s,
        fused_s,
        fused_seq_s,
        compiled_s,
        lane_ops: tally.useful_lane_ops + tally.predicated_lane_slots,
        sim_cycles,
        dispatches: interp.dispatches,
        fused_ops: interp.fused_ops,
        fused_coverage: interp.fused_coverage(&tally),
        compiled_ops: cinterp.compiled_ops,
        compiled_coverage: cinterp.compiled_coverage(&ctally),
        memo_hit_rate: interp.memo_hit_rate(),
    }
}

/// Build the host-throughput report over the given sizes — both
/// workloads (2-PCF and SDH) at every size. Wall-clock numbers are
/// machine-dependent; the gate only pins floors on them.
pub fn build_report(sizes: &[usize]) -> Result<Report, ReportError> {
    if sizes.is_empty() {
        return Err(ReportError::EmptySeries {
            what: "hotpath size list".to_string(),
        });
    }
    let samples: Vec<Sample> = sizes.iter().map(|&n| measure(n)).collect();
    let sdh: Vec<Sample> = sizes.iter().map(|&n| measure_sdh(n)).collect();
    build_report_from(&samples, &sdh)
}

/// Assemble the report from already-taken measurements (split out so the
/// bin can measure once and both print and serialize). `samples` is the
/// 2-PCF (Type-I) workload, `sdh` the privatized SDH (Type-II) workload;
/// the SDH metrics carry an `_sdh` suffix.
pub fn build_report_from(samples: &[Sample], sdh: &[Sample]) -> Result<Report, ReportError> {
    let mut rep = Report::new("sim_hotpath", "Host throughput — interpreter fast paths")
        .with_context(&format!(
            "fig2 2-PCF (Type-I) + privatized SDH (Type-II, {SDH_BUCKETS} buckets), \
             register_shm plan, block={BLOCK}, r={RADIUS}, {BOX}^3 box, \
             parallel exec (sequential cross-checked on the fused route); \
             scalar / vectorized / fused / compiled routes bit-identical"
        ));
    for (table, suffix, set) in [("sizes", "", samples), ("sdh_sizes", "_sdh", sdh)] {
        if set.is_empty() {
            continue;
        }
        let mut t = SeriesTable::new(
            table,
            &[
                "N",
                "count",
                "scalar_s",
                "vec_s",
                "fused_s",
                "seq_s",
                "comp_s",
                "fused/vec",
                "comp/fused",
                "coverage",
                "ccov",
                "memo",
                "Mlane-ops/s",
            ],
        );
        let opt_secs = |v: Option<f64>| match v {
            Some(v) => Cell::num(v, format!("{v:.3}")),
            None => Cell::text("-"),
        };
        let opt_ratio = |v: Option<f64>| match v {
            Some(v) => Cell::num(v, format!("{v:.2}x")),
            None => Cell::text("-"),
        };
        for s in set {
            t.row(vec![
                Cell::int(s.n as u64),
                Cell::int(s.pair_count),
                opt_secs(s.scalar_s),
                opt_secs(s.fast_s),
                Cell::num(s.fused_s, format!("{:.3}", s.fused_s)),
                opt_secs(s.fused_seq_s),
                Cell::num(s.compiled_s, format!("{:.3}", s.compiled_s)),
                opt_ratio(s.fused_vs_vectorized()),
                Cell::num(
                    s.compiled_vs_fused(),
                    format!("{:.2}x", s.compiled_vs_fused()),
                ),
                Cell::num(
                    s.fused_coverage,
                    format!("{:.1}%", s.fused_coverage * 100.0),
                ),
                Cell::num(
                    s.compiled_coverage,
                    format!("{:.1}%", s.compiled_coverage * 100.0),
                ),
                Cell::num(s.memo_hit_rate, format!("{:.1}%", s.memo_hit_rate * 100.0)),
                Cell::num(
                    s.lane_ops_per_s(),
                    format!("{:.1}", s.lane_ops_per_s() / 1e6),
                ),
            ]);
            if let Some(sp) = s.speedup() {
                rep.metric(&format!("speedup{suffix}.n{}", s.n), sp, "x")?;
            }
            if let Some(sp) = s.fused_speedup() {
                rep.metric(&format!("fused_speedup{suffix}.n{}", s.n), sp, "x")?;
            }
            if let Some(v) = s.fused_vs_vectorized() {
                rep.metric(&format!("fused_vs_vectorized{suffix}.n{}", s.n), v, "x")?;
            }
            rep.metric(
                &format!("compiled_vs_fused{suffix}.n{}", s.n),
                s.compiled_vs_fused(),
                "x",
            )?;
            if let Some(v) = s.parallel_vs_sequential() {
                rep.metric(&format!("parallel_vs_sequential{suffix}.n{}", s.n), v, "x")?;
            }
            rep.metric(
                &format!("fused_coverage{suffix}.n{}", s.n),
                s.fused_coverage,
                "frac",
            )?;
            rep.metric(
                &format!("compiled_coverage{suffix}.n{}", s.n),
                s.compiled_coverage,
                "frac",
            )?;
            rep.metric(
                &format!("memo_hit_rate{suffix}.n{}", s.n),
                s.memo_hit_rate,
                "frac",
            )?;
            rep.metric(
                &format!("lane_ops_per_s{suffix}.n{}", s.n),
                s.lane_ops_per_s(),
                "ops/s",
            )?;
        }
        rep.push_table(t);
    }
    rep.push_note(
        "host wall-clock throughput of the simulator interpreter; the vectorized,\n\
         fused and compiled routes must be bit-identical to the scalar reference,\n\
         and the parallel block executor to a sequential run. The fused route\n\
         batches whole inner tile passes into one dispatch; the compiled route\n\
         lowers the kernel plan to closed-form straight-line passes (comp/fused\n\
         is what that lowering buys). coverage/ccov are the fractions of useful\n\
         lane work absorbed by fused/compiled passes. The sdh rows exercise the\n\
         Type-II output stage end-to-end: the compiled route lowers the\n\
         histogram sink itself (sqrt-free squared-edge bucketing + closed-form\n\
         scatter accounting) and the packed Figure-3 cross-copy reduction.",
    );
    Ok(rep)
}
