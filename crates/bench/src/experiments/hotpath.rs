//! **Host throughput** — wall-clock cost of the simulator interpreter
//! itself (the vectorized warp fast paths vs the retained scalar
//! reference).
//!
//! Unlike every other experiment, this one measures *this machine*, not
//! the modeled GPU: it runs the fig2-style 2-PCF workload through the
//! functional simulator twice per problem size — once with
//! `scalar_reference` and once with the vectorized fast paths — asserts
//! the two runs are bit-identical (pair count, full `AccessTally`,
//! simulated timing), and reports wall-clock times and throughput.
//!
//! The `hotpath_baseline` bin prints it and records
//! `BENCH_sim_hotpath.json`; the perf gate pins generous floors on a
//! reduced size (see `report::gate`, group `host`).

use std::time::Instant;

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::config::ExecMode;
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{pcf_gpu, PairwisePlan, PcfResult};
use tbs_datagen::uniform_points;

/// Workload constants, fixed so every measurement is comparable.
pub const RADIUS: f32 = 25.0;
pub const BOX: f32 = 100.0;
pub const SEED: u64 = 11;
pub const BLOCK: u32 = 1024;

/// One problem size's paired measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    pub n: usize,
    pub pair_count: u64,
    /// Wall-clock seconds with the scalar-reference interpreter.
    pub scalar_s: f64,
    /// Wall-clock seconds with the vectorized fast paths.
    pub fast_s: f64,
    /// Executed lane slots (useful + predicated) — the work measure
    /// behind the throughput numbers.
    pub lane_ops: u64,
    pub sim_cycles: f64,
}

impl Sample {
    pub fn speedup(&self) -> f64 {
        self.scalar_s / self.fast_s
    }

    pub fn lane_ops_per_s(&self) -> f64 {
        self.lane_ops as f64 / self.fast_s
    }

    pub fn sim_cycles_per_s(&self) -> f64 {
        self.sim_cycles / self.fast_s
    }
}

fn run_once(n: usize, scalar_reference: bool) -> (f64, PcfResult) {
    let pts = uniform_points::<3>(n, BOX, SEED);
    let cfg = DeviceConfig::titan_x()
        .with_exec_mode(ExecMode::Sequential)
        .with_scalar_reference(scalar_reference);
    let mut dev = Device::new(cfg);
    let t = Instant::now();
    let r = pcf_gpu(&mut dev, &pts, RADIUS, PairwisePlan::register_shm(BLOCK)).expect("launch");
    (t.elapsed().as_secs_f64(), r)
}

/// Measure one size, asserting the fast paths are bit-identical to the
/// scalar reference (same pair count, tally and simulated timing).
pub fn measure(n: usize) -> Sample {
    eprintln!("N={n}: scalar-reference pass...");
    let (scalar_s, scalar) = run_once(n, true);
    eprintln!("N={n}: scalar {scalar_s:.3}s; vectorized pass...");
    let (fast_s, fast) = run_once(n, false);
    eprintln!("N={n}: fast {fast_s:.3}s ({:.2}x)", scalar_s / fast_s);

    // The whole point of the fast paths is that they change nothing but
    // host time: same pair count, same tally, same simulated timing.
    assert_eq!(fast.count, scalar.count, "pair count diverged at N={n}");
    assert_eq!(fast.run.tally, scalar.run.tally, "tally diverged at N={n}");
    assert_eq!(
        fast.run.timing.seconds.to_bits(),
        scalar.run.timing.seconds.to_bits(),
        "simulated time diverged at N={n}"
    );

    let t = &fast.run.tally;
    Sample {
        n,
        pair_count: fast.count,
        scalar_s,
        fast_s,
        lane_ops: t.useful_lane_ops + t.predicated_lane_slots,
        sim_cycles: fast.run.timing.cycles,
    }
}

/// Build the host-throughput report over the given sizes. Wall-clock
/// numbers are machine-dependent; the gate only pins floors on them.
pub fn build_report(sizes: &[usize]) -> Result<Report, ReportError> {
    if sizes.is_empty() {
        return Err(ReportError::EmptySeries {
            what: "hotpath size list".to_string(),
        });
    }
    let samples: Vec<Sample> = sizes.iter().map(|&n| measure(n)).collect();
    build_report_from(&samples)
}

/// Assemble the report from already-taken measurements (split out so the
/// bin can measure once and both print and serialize).
pub fn build_report_from(samples: &[Sample]) -> Result<Report, ReportError> {
    let mut rep = Report::new("sim_hotpath", "Host throughput — interpreter fast paths")
        .with_context(&format!(
            "fig2 2-PCF, register_shm plan, block={BLOCK}, r={RADIUS}, {BOX}^3 box, \
             sequential exec, bit-identical to scalar reference"
        ));
    let mut t = SeriesTable::new(
        "sizes",
        &[
            "N",
            "count",
            "scalar_s",
            "fast_s",
            "speedup",
            "Mlane-ops/s",
            "Msim-cyc/s",
        ],
    );
    for s in samples {
        t.row(vec![
            Cell::int(s.n as u64),
            Cell::int(s.pair_count),
            Cell::num(s.scalar_s, format!("{:.3}", s.scalar_s)),
            Cell::num(s.fast_s, format!("{:.3}", s.fast_s)),
            Cell::num(s.speedup(), format!("{:.2}x", s.speedup())),
            Cell::num(
                s.lane_ops_per_s(),
                format!("{:.1}", s.lane_ops_per_s() / 1e6),
            ),
            Cell::num(
                s.sim_cycles_per_s(),
                format!("{:.1}", s.sim_cycles_per_s() / 1e6),
            ),
        ]);
        rep.metric(&format!("speedup.n{}", s.n), s.speedup(), "x")?;
        rep.metric(
            &format!("lane_ops_per_s.n{}", s.n),
            s.lane_ops_per_s(),
            "ops/s",
        )?;
    }
    rep.push_table(t);
    rep.push_note(
        "host wall-clock throughput of the simulator interpreter; the vectorized\n\
         fast paths must be bit-identical to the scalar reference and faster.",
    );
    Ok(rep)
}
