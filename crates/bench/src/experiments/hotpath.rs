//! **Host throughput** — wall-clock cost of the simulator interpreter
//! itself, across its three routes: the retained scalar reference, the
//! vectorized op-by-op fast paths (`with_fused_tile(false)`), and the
//! shipping default with fused tile passes.
//!
//! Unlike every other experiment, this one measures *this machine*, not
//! the modeled GPU: it runs two workloads through the functional
//! simulator once per route — the fig2-style 2-PCF (Type-I output) and
//! a privatized SDH on the Register-SHM plan (Type-II output: histogram
//! scatters in the inner loop plus the Figure-3 cross-copy reduction) —
//! asserts all routes are bit-identical (pair count / histogram, full
//! `AccessTally`, simulated timing), and reports wall-clock times plus
//! the fused run's interpreter statistics (dispatch count, fused-op lane
//! coverage, cache-memo hit rate).
//!
//! The scalar reference is quadratic in wall-clock pain; above
//! [`SCALAR_CEILING`] only the vectorized and fused routes run (identity
//! against the scalar route is established at the sizes below it).
//!
//! The `hotpath_baseline` bin prints it and records
//! `BENCH_sim_hotpath.json`; the perf gate pins generous floors on a
//! reduced size (see `report::gate`, group `host`).

use std::time::Instant;

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::config::ExecMode;
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{pcf_gpu, sdh_gpu, PairwisePlan, PcfResult, SdhOutputMode, SdhResult};
use tbs_core::histogram::HistogramSpec;
use tbs_datagen::uniform_points;

/// Workload constants, fixed so every measurement is comparable.
pub const RADIUS: f32 = 25.0;
pub const BOX: f32 = 100.0;
pub const SEED: u64 = 11;
pub const BLOCK: u32 = 1024;

/// Largest N the scalar-reference route is run at (it is ~10× slower
/// than the fused route and exists only as the correctness anchor).
pub const SCALAR_CEILING: usize = 131_072;

/// Histogram size for the Type-II (SDH) workload: one private `u32`
/// copy is 1 KiB of shared memory, small next to the 12 KiB point tile.
pub const SDH_BUCKETS: u32 = 256;

/// The Type-II histogram spec: `SDH_BUCKETS` buckets over the box
/// diagonal, so every pair distance bins without clamping.
pub fn sdh_spec() -> HistogramSpec {
    HistogramSpec::new(SDH_BUCKETS, tbs_datagen::box_diagonal(BOX, 3))
}

#[derive(Clone, Copy, PartialEq)]
enum Route {
    Scalar,
    Vectorized,
    Fused,
}

/// One problem size's per-route measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    pub n: usize,
    pub pair_count: u64,
    /// Wall-clock seconds with the scalar-reference interpreter
    /// (`None` above [`SCALAR_CEILING`]).
    pub scalar_s: Option<f64>,
    /// Wall-clock seconds with the vectorized fast paths, fusion off.
    pub fast_s: f64,
    /// Wall-clock seconds with fused tile passes (the default route).
    pub fused_s: f64,
    /// Executed lane slots (useful + predicated) — the work measure
    /// behind the throughput numbers.
    pub lane_ops: u64,
    pub sim_cycles: f64,
    /// Interpreter dispatches on the fused route (each fused tile pass
    /// is one dispatch where the op-by-op route takes thousands).
    pub dispatches: u64,
    /// Fused tile passes taken.
    pub fused_ops: u64,
    /// Fraction of useful lane work executed inside fused passes.
    pub fused_coverage: f64,
    /// Generation-stamped cache-memo hit rate (replayed / probed runs).
    pub memo_hit_rate: f64,
}

impl Sample {
    /// Scalar-reference over vectorized — PR 2's original claim.
    pub fn speedup(&self) -> Option<f64> {
        self.scalar_s.map(|s| s / self.fast_s)
    }

    /// Scalar-reference over fused — the full interpreter stack.
    pub fn fused_speedup(&self) -> Option<f64> {
        self.scalar_s.map(|s| s / self.fused_s)
    }

    /// Vectorized over fused — what fusion alone buys.
    pub fn fused_vs_vectorized(&self) -> f64 {
        self.fast_s / self.fused_s
    }

    /// Lane throughput of the shipping (fused) route.
    pub fn lane_ops_per_s(&self) -> f64 {
        self.lane_ops as f64 / self.fused_s
    }

    pub fn sim_cycles_per_s(&self) -> f64 {
        self.sim_cycles / self.fused_s
    }
}

fn run_once(n: usize, route: Route) -> (f64, PcfResult) {
    let pts = uniform_points::<3>(n, BOX, SEED);
    let mut cfg = DeviceConfig::titan_x().with_exec_mode(ExecMode::Sequential);
    cfg = match route {
        Route::Scalar => cfg.with_scalar_reference(true),
        Route::Vectorized => cfg.with_fused_tile(false),
        Route::Fused => cfg,
    };
    let mut dev = Device::new(cfg);
    let t = Instant::now();
    let r = pcf_gpu(&mut dev, &pts, RADIUS, PairwisePlan::register_shm(BLOCK)).expect("launch");
    (t.elapsed().as_secs_f64(), r)
}

fn assert_routes_identical(n: usize, a: &PcfResult, b: &PcfResult, what: &str) {
    assert_eq!(a.count, b.count, "pair count diverged ({what}) at N={n}");
    assert_eq!(a.run.tally, b.run.tally, "tally diverged ({what}) at N={n}");
    assert_eq!(
        a.run.timing.seconds.to_bits(),
        b.run.timing.seconds.to_bits(),
        "simulated time diverged ({what}) at N={n}"
    );
}

/// Measure one size, asserting every interpreter route is bit-identical
/// (same pair count, tally and simulated timing).
pub fn measure(n: usize) -> Sample {
    eprintln!("N={n}: fused pass...");
    let (fused_s, fused) = run_once(n, Route::Fused);
    eprintln!("N={n}: fused {fused_s:.3}s; vectorized (unfused) pass...");
    let (fast_s, fast) = run_once(n, Route::Vectorized);
    eprintln!(
        "N={n}: vectorized {fast_s:.3}s ({:.2}x from fusion)",
        fast_s / fused_s
    );
    assert_routes_identical(n, &fused, &fast, "fused vs vectorized");
    assert!(
        fused.run.interp.fused_ops > 0,
        "default route took no fused tile passes at N={n}"
    );
    assert_eq!(
        fast.run.interp.fused_ops, 0,
        "with_fused_tile(false) still fused at N={n}"
    );

    let scalar_s = if n <= SCALAR_CEILING {
        eprintln!("N={n}: scalar-reference pass...");
        let (scalar_s, scalar) = run_once(n, Route::Scalar);
        eprintln!("N={n}: scalar {scalar_s:.3}s ({:.2}x)", scalar_s / fused_s);
        assert_routes_identical(n, &fused, &scalar, "fused vs scalar");
        Some(scalar_s)
    } else {
        eprintln!("N={n}: scalar-reference pass skipped (> SCALAR_CEILING)");
        None
    };

    let t = &fused.run.tally;
    let interp = &fused.run.interp;
    Sample {
        n,
        pair_count: fused.count,
        scalar_s,
        fast_s,
        fused_s,
        lane_ops: t.useful_lane_ops + t.predicated_lane_slots,
        sim_cycles: fused.run.timing.cycles,
        dispatches: interp.dispatches,
        fused_ops: interp.fused_ops,
        fused_coverage: interp.fused_coverage(t),
        memo_hit_rate: interp.memo_hit_rate(),
    }
}

fn run_sdh_once(n: usize, route: Route) -> (f64, SdhResult) {
    let pts = uniform_points::<3>(n, BOX, SEED);
    let mut cfg = DeviceConfig::titan_x().with_exec_mode(ExecMode::Sequential);
    cfg = match route {
        Route::Scalar => cfg.with_scalar_reference(true),
        Route::Vectorized => cfg.with_fused_tile(false),
        Route::Fused => cfg,
    };
    let mut dev = Device::new(cfg);
    let t = Instant::now();
    let r = sdh_gpu(
        &mut dev,
        &pts,
        sdh_spec(),
        PairwisePlan::register_shm(BLOCK),
        SdhOutputMode::Privatized,
    )
    .expect("launch");
    (t.elapsed().as_secs_f64(), r)
}

fn assert_sdh_identical(n: usize, a: &SdhResult, b: &SdhResult, what: &str) {
    assert_eq!(
        a.histogram, b.histogram,
        "histogram diverged ({what}) at N={n}"
    );
    assert_eq!(
        a.pair_run.tally, b.pair_run.tally,
        "pair tally diverged ({what}) at N={n}"
    );
    assert_eq!(
        a.pair_run.timing.seconds.to_bits(),
        b.pair_run.timing.seconds.to_bits(),
        "pair simulated time diverged ({what}) at N={n}"
    );
    let ra = a.reduce_run.as_ref().expect("privatized SDH reduces");
    let rb = b.reduce_run.as_ref().expect("privatized SDH reduces");
    assert_eq!(
        ra.tally, rb.tally,
        "reduce tally diverged ({what}) at N={n}"
    );
    assert_eq!(
        ra.timing.seconds.to_bits(),
        rb.timing.seconds.to_bits(),
        "reduce simulated time diverged ({what}) at N={n}"
    );
}

/// Measure the Type-II (SDH, Register-SHM-Out, privatized) workload at
/// one size, asserting every interpreter route produces bit-identical
/// histograms, tallies and simulated timing for *both* kernels (the
/// pairwise scatter stage and the Figure-3 reduction).
pub fn measure_sdh(n: usize) -> Sample {
    eprintln!("SDH N={n}: fused pass...");
    let (fused_s, fused) = run_sdh_once(n, Route::Fused);
    eprintln!("SDH N={n}: fused {fused_s:.3}s; vectorized (unfused) pass...");
    let (fast_s, fast) = run_sdh_once(n, Route::Vectorized);
    eprintln!(
        "SDH N={n}: vectorized {fast_s:.3}s ({:.2}x from fusion)",
        fast_s / fused_s
    );
    assert_sdh_identical(n, &fused, &fast, "fused vs vectorized");
    assert!(
        fused.pair_run.interp.fused_ops > 0,
        "fused route took no fused histogram tile passes at N={n}"
    );
    assert!(
        fused
            .reduce_run
            .as_ref()
            .expect("privatized SDH reduces")
            .interp
            .fused_ops
            > 0,
        "fused route took no packed cross-copy reductions at N={n}"
    );
    assert_eq!(
        fast.pair_run.interp.fused_ops + fast.reduce_run.as_ref().map_or(0, |r| r.interp.fused_ops),
        0,
        "with_fused_tile(false) still fused the SDH at N={n}"
    );

    let scalar_s = if n <= SCALAR_CEILING {
        eprintln!("SDH N={n}: scalar-reference pass...");
        let (scalar_s, scalar) = run_sdh_once(n, Route::Scalar);
        eprintln!(
            "SDH N={n}: scalar {scalar_s:.3}s ({:.2}x)",
            scalar_s / fused_s
        );
        assert_sdh_identical(n, &fused, &scalar, "fused vs scalar");
        Some(scalar_s)
    } else {
        eprintln!("SDH N={n}: scalar-reference pass skipped (> SCALAR_CEILING)");
        None
    };

    // Fold both kernels into one sample: the Type-II claim is about the
    // whole output stage (inner-loop scatters + cross-copy reduction).
    let mut tally = fused.pair_run.tally.clone();
    let mut interp = fused.pair_run.interp.clone();
    let mut sim_cycles = fused.pair_run.timing.cycles;
    if let Some(r) = &fused.reduce_run {
        tally.merge(&r.tally);
        interp.merge(&r.interp);
        sim_cycles += r.timing.cycles;
    }
    Sample {
        n,
        pair_count: fused.histogram.total(),
        scalar_s,
        fast_s,
        fused_s,
        lane_ops: tally.useful_lane_ops + tally.predicated_lane_slots,
        sim_cycles,
        dispatches: interp.dispatches,
        fused_ops: interp.fused_ops,
        fused_coverage: interp.fused_coverage(&tally),
        memo_hit_rate: interp.memo_hit_rate(),
    }
}

/// Build the host-throughput report over the given sizes — both
/// workloads (2-PCF and SDH) at every size. Wall-clock numbers are
/// machine-dependent; the gate only pins floors on them.
pub fn build_report(sizes: &[usize]) -> Result<Report, ReportError> {
    if sizes.is_empty() {
        return Err(ReportError::EmptySeries {
            what: "hotpath size list".to_string(),
        });
    }
    let samples: Vec<Sample> = sizes.iter().map(|&n| measure(n)).collect();
    let sdh: Vec<Sample> = sizes.iter().map(|&n| measure_sdh(n)).collect();
    build_report_from(&samples, &sdh)
}

/// Assemble the report from already-taken measurements (split out so the
/// bin can measure once and both print and serialize). `samples` is the
/// 2-PCF (Type-I) workload, `sdh` the privatized SDH (Type-II) workload;
/// the SDH metrics carry an `_sdh` suffix.
pub fn build_report_from(samples: &[Sample], sdh: &[Sample]) -> Result<Report, ReportError> {
    let mut rep = Report::new("sim_hotpath", "Host throughput — interpreter fast paths")
        .with_context(&format!(
            "fig2 2-PCF (Type-I) + privatized SDH (Type-II, {SDH_BUCKETS} buckets), \
             register_shm plan, block={BLOCK}, r={RADIUS}, {BOX}^3 box, \
             sequential exec; scalar / vectorized / fused routes bit-identical"
        ));
    for (table, suffix, set) in [("sizes", "", samples), ("sdh_sizes", "_sdh", sdh)] {
        if set.is_empty() {
            continue;
        }
        let mut t = SeriesTable::new(
            table,
            &[
                "N",
                "count",
                "scalar_s",
                "vec_s",
                "fused_s",
                "fused/vec",
                "coverage",
                "memo",
                "Mlane-ops/s",
            ],
        );
        for s in set {
            t.row(vec![
                Cell::int(s.n as u64),
                Cell::int(s.pair_count),
                match s.scalar_s {
                    Some(v) => Cell::num(v, format!("{v:.3}")),
                    None => Cell::text("-"),
                },
                Cell::num(s.fast_s, format!("{:.3}", s.fast_s)),
                Cell::num(s.fused_s, format!("{:.3}", s.fused_s)),
                Cell::num(
                    s.fused_vs_vectorized(),
                    format!("{:.2}x", s.fused_vs_vectorized()),
                ),
                Cell::num(
                    s.fused_coverage,
                    format!("{:.1}%", s.fused_coverage * 100.0),
                ),
                Cell::num(s.memo_hit_rate, format!("{:.1}%", s.memo_hit_rate * 100.0)),
                Cell::num(
                    s.lane_ops_per_s(),
                    format!("{:.1}", s.lane_ops_per_s() / 1e6),
                ),
            ]);
            if let Some(sp) = s.speedup() {
                rep.metric(&format!("speedup{suffix}.n{}", s.n), sp, "x")?;
            }
            if let Some(sp) = s.fused_speedup() {
                rep.metric(&format!("fused_speedup{suffix}.n{}", s.n), sp, "x")?;
            }
            rep.metric(
                &format!("fused_vs_vectorized{suffix}.n{}", s.n),
                s.fused_vs_vectorized(),
                "x",
            )?;
            rep.metric(
                &format!("fused_coverage{suffix}.n{}", s.n),
                s.fused_coverage,
                "frac",
            )?;
            rep.metric(
                &format!("memo_hit_rate{suffix}.n{}", s.n),
                s.memo_hit_rate,
                "frac",
            )?;
            rep.metric(
                &format!("lane_ops_per_s{suffix}.n{}", s.n),
                s.lane_ops_per_s(),
                "ops/s",
            )?;
        }
        rep.push_table(t);
    }
    rep.push_note(
        "host wall-clock throughput of the simulator interpreter; the vectorized\n\
         and fused routes must be bit-identical to the scalar reference. The\n\
         fused route batches whole inner tile passes into one dispatch;\n\
         coverage is the fraction of useful lane work it absorbed. The sdh\n\
         rows exercise the Type-II output stage: fused histogram scatters\n\
         plus the packed Figure-3 cross-copy reduction.",
    );
    Ok(rep)
}
