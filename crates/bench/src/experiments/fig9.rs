//! **Figure 9** — "Performance of different GPU-based algorithm for
//! computing SDH: total running time and speedup over CPU algorithm"
//! (the shuffle-tiling study, §IV-E2).
//!
//! Compares register tiling via warp shuffle against tiling via shared
//! memory (Reg-SHM-Out) and the read-only cache (Reg-ROC-Out), all with
//! privatized output, plus the CPU baseline. The paper's conclusion:
//! "tiling with shuffle instruction has almost the same performance as
//! tiling with read-only cache and tiling with shared memory" — an
//! alternative when both caches are busy elsewhere.

use crate::experiments::fig4::SDH_BUCKETS;
use crate::paper_workload;
use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::DeviceConfig;
use tbs_core::analytic::{
    predicted_reduction_run, predicted_run, InputPath, KernelSpec, OutputPath,
};
use tbs_cpu::CpuModel;

/// One N sample.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    pub n: u32,
    pub cpu: f64,
    pub reg_shm_out: f64,
    pub reg_roc_out: f64,
    pub shuffle_out: f64,
}

/// Predict the Figure-9 series.
pub fn series(sizes: &[u32], cfg: &DeviceConfig, cpu: &CpuModel) -> Vec<Row> {
    let out = OutputPath::SharedHistogram {
        buckets: SDH_BUCKETS,
    };
    sizes
        .iter()
        .map(|&n| {
            let wl = paper_workload(n);
            let reduction = predicted_reduction_run(SDH_BUCKETS, wl.m() as u32, cfg).seconds();
            let t =
                |input| predicted_run(&wl, &KernelSpec::new(input, out), cfg).seconds() + reduction;
            Row {
                n,
                cpu: cpu.seconds(n as u64),
                reg_shm_out: t(InputPath::RegisterShm),
                reg_roc_out: t(InputPath::RegisterRoc),
                shuffle_out: t(InputPath::Shuffle),
            }
        })
        .collect()
}

/// Build the structured Figure-9 report (tables + gate metrics).
pub fn build_report(
    sizes: &[u32],
    cfg: &DeviceConfig,
    cpu: &CpuModel,
) -> Result<Report, ReportError> {
    let rows = series(sizes, cfg, cpu);
    let mut rep = Report::new(
        "fig9",
        "Figure 9 — SDH with shuffle-instruction tiling vs cache tiling",
    )
    .with_context("privatized output; times include the reduction stage");

    let mut t = SeriesTable::new(
        "times",
        &["N", "CPU", "Reg-SHM-Out", "Reg-ROC-Out", "Shuffle"],
    );
    for r in &rows {
        t.row(vec![
            Cell::int(r.n as u64),
            Cell::secs(r.cpu),
            Cell::secs(r.reg_shm_out),
            Cell::secs(r.reg_roc_out),
            Cell::secs(r.shuffle_out),
        ]);
    }
    rep.push_table(t);

    let mut s = SeriesTable::new(
        "speedups_over_cpu",
        &["N", "Reg-SHM-Out", "Reg-ROC-Out", "Shuffle"],
    );
    for r in &rows {
        s.row(vec![
            Cell::int(r.n as u64),
            Cell::x(r.cpu / r.reg_shm_out),
            Cell::x(r.cpu / r.reg_roc_out),
            Cell::x(r.cpu / r.shuffle_out),
        ]);
    }
    rep.push_table(s);

    // Gate metrics over the saturated regime: shuffle stays within the
    // paper's "almost the same" band of the best cache-tiled kernel, and
    // still crushes the CPU.
    let saturated: Vec<&Row> = rows.iter().filter(|r| r.n >= 400_000).collect();
    if saturated.is_empty() {
        return Err(ReportError::EmptySeries {
            what: "fig9 N >= 400K rows".to_string(),
        });
    }
    let worst_ratio = saturated
        .iter()
        .map(|r| r.shuffle_out / r.reg_shm_out.min(r.reg_roc_out))
        .fold(f64::NEG_INFINITY, f64::max);
    let min_cpu_speedup = saturated
        .iter()
        .map(|r| r.cpu / r.shuffle_out)
        .fold(f64::INFINITY, f64::min);
    rep.metric("shuffle_over_best_cache.max", worst_ratio, "ratio")?;
    rep.metric("speedup_over_cpu.min", min_cpu_speedup, "x")?;

    rep.push_note(
        "paper: the shuffle kernel has almost the same performance as the\n\
         shared-memory and read-only-cache tiled kernels (speedups ~45-55x).",
    );
    Ok(rep)
}

/// Render the Figure-9 report.
pub fn report(sizes: &[u32], cfg: &DeviceConfig, cpu: &CpuModel) -> String {
    match build_report(sizes, cfg, cpu) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("fig9 report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbs_datagen::paper_sweep;

    #[test]
    fn shuffle_is_competitive_with_cache_tiling() {
        let cfg = DeviceConfig::titan_x();
        let cpu = CpuModel::xeon_e5_2640_v2();
        let rows = series(&paper_sweep(5, 1024), &cfg, &cpu);
        for r in rows.iter().filter(|r| r.n >= 400_000) {
            let best_cache = r.reg_shm_out.min(r.reg_roc_out);
            let ratio = r.shuffle_out / best_cache;
            assert!(
                (0.6..1.6).contains(&ratio),
                "shuffle must be within ~±50% of cache tiling, got {ratio} at N={}",
                r.n
            );
            assert!(
                r.cpu / r.shuffle_out > 15.0,
                "shuffle still crushes the CPU"
            );
        }
    }

    #[test]
    fn report_renders() {
        let rep = report(
            &[409_600],
            &DeviceConfig::titan_x(),
            &CpuModel::xeon_e5_2640_v2(),
        );
        assert!(rep.contains("Shuffle"));
    }
}
