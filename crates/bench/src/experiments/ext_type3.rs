//! **Extension: Type-III output study** — warp-aggregated output
//! allocation for the distance join.
//!
//! Type-III 2-BS optimization is the paper's declared future work
//! (§V: "techniques that can improve the efficiency of type-III 2-BSs").
//! This study compares the two output-slot allocation strategies of
//! [`tbs_core::output::PairListAction`] across join selectivities:
//! per-lane `atomicAdd` on the output cursor vs one aggregated
//! `atomicAdd` per warp (ballot + prefix + shuffle broadcast).

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{distance_join_gpu, PairwisePlan};
use tbs_core::SoaPoints;

/// One (radius, strategy-pair) sample.
#[derive(Debug, Clone)]
pub struct Row {
    pub radius: f32,
    /// Fraction of pairs that match.
    pub selectivity: f64,
    pub naive_seconds: f64,
    pub aggregated_seconds: f64,
    pub naive_serial: u64,
    pub aggregated_serial: u64,
}

/// Sweep join selectivity on a functional simulation. A radius whose
/// launch faults is reported and skipped; the rest of the sweep runs.
pub fn series(pts: &SoaPoints<2>, radii: &[f32], block: u32) -> Vec<Row> {
    let n = pts.len() as u64;
    let pairs = n * (n - 1) / 2;
    radii
        .iter()
        .filter_map(|&radius| {
            let cap = (pairs as u32).max(1);
            let mut dev = Device::new(DeviceConfig::titan_x());
            let naive = distance_join_gpu(
                &mut dev,
                pts,
                radius,
                cap,
                false,
                PairwisePlan::register_shm(block),
            );
            let mut dev2 = Device::new(DeviceConfig::titan_x());
            let agg = distance_join_gpu(
                &mut dev2,
                pts,
                radius,
                cap,
                true,
                PairwisePlan::register_shm(block),
            );
            let (naive, agg) = match (naive, agg) {
                (Ok(naive), Ok(agg)) => (naive, agg),
                (naive, agg) => {
                    let err = naive.err().or(agg.err()).expect("one side faulted");
                    eprintln!("ext_type3: skipping radius {radius}: {err}");
                    return None;
                }
            };
            assert_eq!(naive.pairs, agg.pairs, "strategies must agree");
            Some(Row {
                radius,
                selectivity: naive.total_matches as f64 / pairs as f64,
                naive_seconds: naive.run.timing.seconds,
                aggregated_seconds: agg.run.timing.seconds,
                naive_serial: naive.run.tally.global_atomic_serial,
                aggregated_serial: agg.run.tally.global_atomic_serial,
            })
        })
        .collect()
}

/// Build the structured Type-III study report.
pub fn build_report(n: usize, block: u32) -> Result<Report, ReportError> {
    let pts = tbs_datagen::uniform_points::<2>(n, 100.0, 11);
    let rows = series(&pts, &[2.0, 5.0, 10.0, 20.0, 40.0, 80.0], block);
    let mut rep = Report::new(
        "ext_type3",
        "Extension — Type-III join output: per-lane vs warp-aggregated slot allocation",
    )
    .with_context(&format!("functional simulation, N = {n}, B = {block}"));
    let mut t = SeriesTable::new(
        "selectivity_sweep",
        &[
            "radius",
            "selectivity",
            "per-lane",
            "aggregated",
            "speedup",
            "serial ops (lane/agg)",
        ],
    );
    for r in &rows {
        t.row(vec![
            Cell::num(r.radius as f64, format!("{:.0}", r.radius)),
            Cell::num(r.selectivity, format!("{:.3}%", r.selectivity * 100.0)),
            Cell::secs(r.naive_seconds),
            Cell::secs(r.aggregated_seconds),
            Cell::x(r.naive_seconds / r.aggregated_seconds),
            Cell::text(format!("{}/{}", r.naive_serial, r.aggregated_serial)),
        ]);
    }
    rep.push_table(t);

    // The densest (largest-radius) row is where aggregation must win.
    let dense = rows.last().ok_or_else(|| ReportError::EmptySeries {
        what: "ext_type3 selectivity sweep".to_string(),
    })?;
    rep.metric(
        "serial_ratio.dense",
        dense.naive_serial as f64 / dense.aggregated_serial.max(1) as f64,
        "ratio",
    )?;
    rep.metric(
        "agg_speedup.dense",
        dense.naive_seconds / dense.aggregated_seconds,
        "x",
    )?;
    rep.push_note(
        "warp aggregation pays off as selectivity grows: the per-lane cursor\n\
         serializes once per matching lane, aggregation once per warp.",
    );
    Ok(rep)
}

/// Render the Type-III study report.
pub fn report(n: usize, block: u32) -> String {
    match build_report(n, block) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("ext_type3 report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_wins_at_high_selectivity() {
        let pts = tbs_datagen::uniform_points::<2>(768, 100.0, 11);
        let rows = series(&pts, &[5.0, 60.0], 64);
        let dense = &rows[1];
        assert!(dense.selectivity > 0.3, "{}", dense.selectivity);
        assert!(
            dense.naive_serial > 4 * dense.aggregated_serial,
            "serial {} vs {}",
            dense.naive_serial,
            dense.aggregated_serial
        );
        assert!(
            dense.naive_seconds > dense.aggregated_seconds,
            "{} vs {}",
            dense.naive_seconds,
            dense.aggregated_seconds
        );
    }

    #[test]
    fn selectivity_is_monotone_in_radius() {
        let pts = tbs_datagen::uniform_points::<2>(512, 100.0, 13);
        let rows = series(&pts, &[2.0, 10.0, 50.0], 64);
        assert!(rows[0].selectivity < rows[1].selectivity);
        assert!(rows[1].selectivity < rows[2].selectivity);
    }
}
