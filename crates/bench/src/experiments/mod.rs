//! One module per table/figure of the paper (plus the extension
//! studies). See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
//! for recorded paper-vs-measured results.

pub mod ext_arch;
pub mod ext_blocksize;
pub mod ext_fusedout;
pub mod ext_ls;
pub mod ext_multicopy;
pub mod ext_multigpu;
pub mod ext_serve;
pub mod ext_skew;
pub mod ext_type3;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig9;
pub mod gridpath;
pub mod hotpath;
pub mod tables;
