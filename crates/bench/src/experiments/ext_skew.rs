//! **Extension: data-skew study** — atomic contention under clustered
//! inputs.
//!
//! The paper evaluates on uniform data only; its Figure-5 discussion
//! observes that contention appears when many threads compete for few
//! output elements. Clustered (Gaussian-mixture) inputs produce exactly
//! that: most pairwise distances collapse into a few histogram buckets.
//! This *functional* study measures real same-address serialization on
//! the simulator for uniform vs clustered data.

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::{AccessTally, Device, DeviceConfig};
use tbs_core::histogram::HistogramSpec;
use tbs_core::kernels::{pair_launch, IntraMode, PairScope, RegisterShmKernel};
use tbs_core::output::SharedHistogramAction;
use tbs_core::{Euclidean, SoaPoints};

/// Measured contention for one dataset.
#[derive(Debug, Clone)]
pub struct Row {
    pub label: String,
    /// Average same-address serialization degree per shared atomic.
    pub contention: f64,
    /// Simulated kernel seconds.
    pub seconds: f64,
    /// Fraction of all counts landing in the busiest bucket.
    pub peak_bucket_share: f64,
    /// Full instrumentation snapshot of the run (embedded in the JSON
    /// report so contention regressions can be diffed at counter level).
    pub tally: AccessTally,
}

/// Run the functional SDH kernel on one dataset and measure contention.
/// A faulting launch is reported and yields `None` so dataset sweeps can
/// skip the bad configuration and continue.
pub fn measure(pts: &SoaPoints<3>, label: &str, buckets: u32, block: u32) -> Option<Row> {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let input = pts.upload(&mut dev);
    let lc = pair_launch(input.n, block);
    let spec = HistogramSpec::new(
        buckets,
        tbs_datagen::box_diagonal(tbs_datagen::DEFAULT_BOX, 3),
    );
    let private = dev.alloc_u32_zeroed((lc.grid_dim * buckets) as usize);
    let k = RegisterShmKernel::new(
        input,
        Euclidean,
        SharedHistogramAction { spec, private },
        block,
        PairScope::HalfPairs,
        IntraMode::Regular,
    );
    let run = match dev.try_launch(&k, lc) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("ext_skew: skipping dataset '{label}': {e}");
            return None;
        }
    };
    let counts = dev.u32_slice(private);
    let mut per_bucket = vec![0u64; buckets as usize];
    for (i, &c) in counts.iter().enumerate() {
        per_bucket[i % buckets as usize] += c as u64;
    }
    let total: u64 = per_bucket.iter().sum();
    let peak = per_bucket.iter().copied().max().unwrap_or(0);
    Some(Row {
        label: label.to_string(),
        contention: run.tally.shared_atomic_contention(),
        seconds: run.timing.seconds,
        peak_bucket_share: peak as f64 / total.max(1) as f64,
        tally: run.tally,
    })
}

/// Compare uniform vs increasingly-tight clustered data. Faulting
/// datasets are skipped (see [`measure`]).
pub fn series(n: usize, buckets: u32, block: u32) -> Vec<Row> {
    let mut rows = Vec::new();
    rows.extend(measure(
        &tbs_datagen::uniform_points::<3>(n, tbs_datagen::DEFAULT_BOX, 7),
        "uniform",
        buckets,
        block,
    ));
    for (clusters, spread) in [(8usize, 5.0f32), (4, 2.0), (1, 1.0)] {
        let pts =
            tbs_datagen::clustered_points::<3>(n, tbs_datagen::DEFAULT_BOX, clusters, spread, 7);
        rows.extend(measure(
            &pts,
            &format!("clustered k={clusters} sigma={spread}"),
            buckets,
            block,
        ));
    }
    rows
}

/// Build the structured skew-study report.
pub fn build_report(n: usize, buckets: u32, block: u32) -> Result<Report, ReportError> {
    let rows = series(n, buckets, block);
    let mut rep = Report::new(
        "ext_skew",
        "Extension — SDH atomic contention under data skew",
    )
    .with_context(&format!(
        "functional simulation, N = {n}, {buckets} buckets, B = {block}"
    ));
    let mut t = SeriesTable::new(
        "datasets",
        &["dataset", "contention", "peak-bucket share", "sim time"],
    );
    for r in &rows {
        t.row(vec![
            Cell::text(r.label.as_str()),
            Cell::num(r.contention, format!("{:.2}x", r.contention)),
            Cell::num(
                r.peak_bucket_share,
                format!("{:.0}%", r.peak_bucket_share * 100.0),
            ),
            Cell::secs(r.seconds),
        ]);
    }
    rep.push_table(t);

    let uniform =
        rows.iter()
            .find(|r| r.label == "uniform")
            .ok_or_else(|| ReportError::EmptySeries {
                what: "ext_skew uniform dataset".to_string(),
            })?;
    let tightest = rows.last().ok_or_else(|| ReportError::EmptySeries {
        what: "ext_skew clustered datasets".to_string(),
    })?;
    rep.metric("uniform_contention", uniform.contention, "x")?;
    rep.metric(
        "contention_ratio.tightest_over_uniform",
        tightest.contention / uniform.contention,
        "ratio",
    )?;
    // The tightest cluster is the interesting instrumentation snapshot:
    // it is the run whose serialization the gate pins.
    rep.tally = Some(tightest.tally.clone());
    rep.push_note(
        "skewed inputs concentrate distances into few buckets, raising the\n\
         same-address serialization of the privatized output's shared atomics —\n\
         the contention regime the paper only reaches via tiny histograms.",
    );
    Ok(rep)
}

/// Render the skew-study report.
pub fn report(n: usize, buckets: u32, block: u32) -> String {
    match build_report(n, buckets, block) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("ext_skew report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_raises_contention_and_time() {
        let rows = series(1024, 256, 64);
        let uniform = &rows[0];
        let tightest = rows.last().unwrap();
        assert!(
            tightest.contention > uniform.contention * 1.5,
            "contention {:.2} vs uniform {:.2}",
            tightest.contention,
            uniform.contention
        );
        assert!(tightest.peak_bucket_share > uniform.peak_bucket_share);
        assert!(tightest.seconds > uniform.seconds);
    }

    #[test]
    fn uniform_contention_is_mild() {
        let rows = series(512, 256, 64);
        assert!(rows[0].contention < 2.5, "{}", rows[0].contention);
    }
}
