//! **Grid vs all-pairs** — wall-clock of the uniform-grid spatial front
//! end against the monolithic all-pairs route, on this machine.
//!
//! Like `hotpath`, this measures the *host*, not the modeled GPU: the
//! point of the grid is sub-quadratic asymptotics, and the honest way
//! to show that is wall-clock of the same simulator executing ~30–70×
//! fewer candidate pairs. Both routes run the plan-compiled interpreter
//! (`with_compiled(true)`, the fastest host route), the same
//! Register-SHM plan and the same seeded uniform catalog; the grid
//! route's count is asserted bit-identical against the CPU grid oracle
//! at every size and against the all-pairs device route wherever the
//! latter is actually measured.
//!
//! All-pairs wall-clock is quadratic (~200 s at N = 1048576 on the CI
//! class machine), so by default it is *measured* only up to
//! [`GridpathConfig::all_pairs_ceiling`] and *projected* quadratically
//! from the anchor size above it — the same defused-footgun pattern as
//! `hotpath_baseline --budget-secs`. The `gridpath_baseline` bin's
//! `--full` flag measures N = 1048576 all-pairs directly.
//!
//! Both gridded routes are measured on the same catalog: the default
//! **packed** route (segmented multi-cell-pair launches, O(population
//! classes) launches) and the **per-cell-pair** oracle route (one
//! launch per surviving cell pair), with counts asserted bit-identical
//! in-run. The perf gate pins four hard floors (group `host`):
//! `grid_vs_allpairs.n1048576 ≥ 10` — the headline ≥10× win —
//! `pruned_pair_fraction.n262144 ≥ 0.9` at the reference r_max,
//! `packed_vs_unpacked.n262144 ≥ 2` — launch packing must beat the
//! per-cell-pair route — and `model_agreement ≥ 1` at the gate sizes
//! (the SpatialPlan model's pick matches the measured winner).

use std::time::Instant;

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{
    gridded_count_within, gridded_count_within_routed, pcf_gpu, GriddedCatalog, GriddedRoute,
    PairwisePlan,
};
use tbs_core::grid::GridOptions;
use tbs_core::plan::{choose_spatial_plan, ProblemOutput, ProblemSpec, SpatialRoute};
use tbs_cpu::grid_pcf_device_reference;
use tbs_datagen::uniform_points;

/// The reference radius: small against the box, the regime the grid
/// exists for (CUTE/FCFC-style correlation scales).
pub const R_MAX: f32 = 5.0;
pub const BOX: f32 = 100.0;
pub const SEED: u64 = 23;
pub const BLOCK: u32 = 1024;

/// Points per cell the sizing rule aims for. ~512 balances candidate
/// fraction (∝ target/N) against per-cell-pair launch overhead
/// (∝ N/target) on this host.
pub const TARGET_PTS: u32 = 512;

/// The reference grid options every measurement uses.
pub fn grid_options() -> GridOptions {
    GridOptions {
        target_points_per_cell: TARGET_PTS,
        max_cells: 1 << 20,
    }
}

/// Both routes run the fastest host route: the plan-compiled
/// interpreter.
fn device() -> Device {
    Device::new(DeviceConfig::titan_x().with_compiled(true))
}

/// How much quadratic all-pairs work a sweep is allowed to measure
/// directly.
#[derive(Debug, Clone, Copy)]
pub struct GridpathConfig {
    /// Measure the all-pairs route directly at sizes up to this; larger
    /// sizes get a quadratic projection from the anchor.
    pub all_pairs_ceiling: usize,
    /// The size whose measured all-pairs wall-clock anchors projections.
    pub anchor_n: usize,
    /// Cross-check every grid count against the CPU grid oracle.
    pub oracle: bool,
}

impl GridpathConfig {
    /// The `gridpath_baseline` default: anchor at 131072 (~3 s
    /// compiled), project above it.
    pub fn default_run() -> Self {
        GridpathConfig {
            all_pairs_ceiling: 131_072,
            anchor_n: 131_072,
            oracle: true,
        }
    }

    /// `--full`: measure all-pairs directly at every size, N = 1048576
    /// included (~minutes).
    pub fn full() -> Self {
        GridpathConfig {
            all_pairs_ceiling: usize::MAX,
            ..Self::default_run()
        }
    }

    /// The CI perf gate: cheapest honest sweep — small anchor, no CPU
    /// oracle (the differential suite owns exactness in CI).
    pub fn gate() -> Self {
        GridpathConfig {
            all_pairs_ceiling: 65_536,
            anchor_n: 65_536,
            oracle: false,
        }
    }
}

/// One problem size's grid-vs-all-pairs measurement.
#[derive(Debug, Clone)]
pub struct GridSample {
    pub n: usize,
    /// Within-radius pair count (bit-identical across all routes).
    pub count: u64,
    /// Wall-clock of binning + the one-shot SoA upload alone.
    pub build_s: f64,
    /// Total grid-route wall-clock on the default packed route: build +
    /// every packed launch.
    pub grid_s: f64,
    /// Total grid-route wall-clock on the per-cell-pair oracle route:
    /// the same build cost + one launch per surviving cell pair.
    pub unpacked_s: f64,
    pub cells: u64,
    pub occupied_cells: u64,
    pub launches: u64,
    /// Launches the packed route actually issued (≤ ~10× classes).
    pub packed_launches: u64,
    /// Distinct cell-population classes the packer planned for.
    pub population_classes: u64,
    /// Fraction of the N(N−1)/2 pair mass culled before any kernel ran.
    pub pruned_fraction: f64,
    /// The [`choose_spatial_plan`] analytic model's predicted speedup.
    pub model_speedup: f64,
    /// Whether the model routed to the grid. On the *modeled* GPU the
    /// per-launch floor makes all-pairs win at small N; the model must
    /// flip to the grid by N = 1048576 (asserted by the bin).
    pub model_picks_grid: bool,
    /// Measured all-pairs wall-clock (`None` above the ceiling).
    pub all_pairs_s: Option<f64>,
    /// Quadratic projection from the anchor measurement.
    pub all_pairs_projected_s: f64,
}

impl GridSample {
    /// Measured all-pairs time when available, projection otherwise.
    pub fn all_pairs_best(&self) -> f64 {
        self.all_pairs_s.unwrap_or(self.all_pairs_projected_s)
    }

    /// The headline ratio: all-pairs over grid wall-clock.
    pub fn speedup(&self) -> f64 {
        self.all_pairs_best() / self.grid_s
    }

    /// The launch-packing win: per-cell-pair over packed wall-clock.
    pub fn packed_vs_unpacked(&self) -> f64 {
        self.unpacked_s / self.grid_s
    }

    /// Whether the SpatialPlan model's pick matches the measured winner
    /// (grid iff the measured grid route beats all-pairs wall-clock).
    pub fn model_agrees(&self) -> bool {
        self.model_picks_grid == (self.speedup() > 1.0)
    }
}

/// Measure the all-pairs route once at `n` (compiled interpreter).
pub fn measure_all_pairs(n: usize) -> (f64, u64) {
    let pts = uniform_points::<3>(n, BOX, SEED);
    let mut dev = device();
    let t = Instant::now();
    let r = pcf_gpu(&mut dev, &pts, R_MAX, PairwisePlan::register_shm(BLOCK)).expect("launch");
    (t.elapsed().as_secs_f64(), r.count)
}

/// Measure one size: grid route (always), CPU oracle cross-check
/// (optional), all-pairs route (below the ceiling, asserted
/// bit-identical).
pub fn measure(n: usize, cfg: &GridpathConfig, anchor: (usize, f64)) -> GridSample {
    let pts = uniform_points::<3>(n, BOX, SEED);
    eprintln!("gridpath N={n}: binning + per-cell upload...");
    let mut dev = device();
    let t = Instant::now();
    let cat = GriddedCatalog::build_self(&mut dev, &pts, R_MAX, &grid_options());
    let build_s = t.elapsed().as_secs_f64();
    let res = gridded_count_within(&mut dev, &cat, R_MAX, PairwisePlan::register_shm(BLOCK))
        .expect("gridded launch");
    let grid_s = t.elapsed().as_secs_f64();
    let stats = res.run.stats;
    eprintln!(
        "gridpath N={n}: packed grid {grid_s:.3}s (build {build_s:.3}s, {} launches over {} \
         population classes, {}/{} cells, {:.1}% of pairs pruned)",
        res.run.launches(),
        res.run.population_classes,
        stats.occupied_cells,
        stats.cells,
        stats.pruned_fraction() * 100.0
    );

    // The per-cell-pair oracle route on the *same* catalog: both routes
    // pay the same build, so the ratio isolates the launch packing.
    let t = Instant::now();
    let unpacked = gridded_count_within_routed(
        &mut dev,
        &cat,
        R_MAX,
        PairwisePlan::register_shm(BLOCK),
        GriddedRoute::PerCellPair,
    )
    .expect("per-cell-pair launch");
    let unpacked_s = build_s + t.elapsed().as_secs_f64();
    assert_eq!(
        res.count, unpacked.count,
        "packed count diverged from the per-cell-pair route at N={n}"
    );
    eprintln!(
        "gridpath N={n}: per-cell-pair {unpacked_s:.3}s ({} launches, packed {:.1}x)",
        unpacked.run.launches(),
        unpacked_s / grid_s
    );

    if cfg.oracle {
        eprintln!("gridpath N={n}: CPU grid oracle cross-check...");
        let t = Instant::now();
        // The device predicate is `√dist² < r`, so the cross-engine
        // oracle must mirror that arithmetic (not the CPU comparator's
        // sqrt-free `dist² < r²`, which flips rare boundary pairs).
        let want = grid_pcf_device_reference(&pts, R_MAX, &grid_options());
        assert_eq!(
            res.count, want,
            "grid-pruned device count diverged from the CPU oracle at N={n}"
        );
        eprintln!(
            "gridpath N={n}: oracle agreed ({want} pairs) in {:.3}s",
            t.elapsed().as_secs_f64()
        );
    }

    let all_pairs_s = if n <= cfg.all_pairs_ceiling {
        eprintln!("gridpath N={n}: all-pairs pass...");
        let (s, count) = measure_all_pairs(n);
        assert_eq!(
            res.count, count,
            "grid-pruned count diverged from the all-pairs route at N={n}"
        );
        eprintln!("gridpath N={n}: all-pairs {s:.3}s ({:.1}x)", s / grid_s);
        Some(s)
    } else {
        let scale = n as f64 / anchor.0 as f64;
        eprintln!(
            "gridpath N={n}: all-pairs pass skipped (O(N²) footgun) — projecting {:.1}s \
             quadratically from N={}",
            anchor.1 * scale * scale,
            anchor.0
        );
        None
    };
    let scale = n as f64 / anchor.0 as f64;
    let all_pairs_projected_s = anchor.1 * scale * scale;

    // The analytic SpatialPlan model's verdict on the same pruning
    // stats. Note this models the *GPU*, not this host: its per-launch
    // floor legitimately keeps all-pairs ahead at small N, and the bin
    // asserts the route flips to the grid by N = 1048576.
    let spatial = choose_spatial_plan(
        &ProblemSpec {
            n: n as u32,
            dims: 3,
            dist_cost: 7,
            output: ProblemOutput::Scalar,
        },
        &stats,
        &DeviceConfig::titan_x(),
    );

    GridSample {
        n,
        count: res.count,
        build_s,
        grid_s,
        unpacked_s,
        cells: stats.cells as u64,
        occupied_cells: stats.occupied_cells as u64,
        launches: u64::from(res.run.launches()),
        packed_launches: u64::from(res.run.packed_launches),
        population_classes: u64::from(res.run.population_classes),
        pruned_fraction: stats.pruned_fraction(),
        model_speedup: spatial.predicted_speedup(),
        model_picks_grid: spatial.route == SpatialRoute::Grid,
        all_pairs_s,
        all_pairs_projected_s,
    }
}

/// Build the grid-vs-all-pairs report over `sizes`.
pub fn build_report(sizes: &[usize], cfg: &GridpathConfig) -> Result<Report, ReportError> {
    if sizes.is_empty() {
        return Err(ReportError::EmptySeries {
            what: "gridpath size list".to_string(),
        });
    }
    eprintln!(
        "gridpath: measuring the all-pairs anchor at N={}...",
        cfg.anchor_n
    );
    let (anchor_s, _) = measure_all_pairs(cfg.anchor_n);
    eprintln!("gridpath: anchor {anchor_s:.3}s");
    let samples: Vec<GridSample> = sizes
        .iter()
        .map(|&n| measure(n, cfg, (cfg.anchor_n, anchor_s)))
        .collect();
    build_report_from(&samples)
}

/// Assemble the report from already-taken measurements.
pub fn build_report_from(samples: &[GridSample]) -> Result<Report, ReportError> {
    let mut rep = Report::new(
        "sim_gridpath",
        "Spatial pruning — grid vs all-pairs wall clock",
    )
    .with_context(&format!(
        "uniform-grid front end vs monolithic all-pairs, 2-PCF count, \
         r={R_MAX}, {BOX}^3 box, target {TARGET_PTS} pts/cell, \
         register_shm plan, block={BLOCK}, compiled interpreter route"
    ));
    let mut t = SeriesTable::new(
        "sizes",
        &[
            "N",
            "count",
            "cells",
            "occ",
            "classes",
            "launches",
            "pruned",
            "build_s",
            "grid_s",
            "unpacked_s",
            "packed_x",
            "allpairs_s",
            "speedup",
            "model_x",
        ],
    );
    for s in samples {
        t.row(vec![
            Cell::int(s.n as u64),
            Cell::int(s.count),
            Cell::int(s.cells),
            Cell::int(s.occupied_cells),
            Cell::int(s.population_classes),
            Cell::int(s.launches),
            Cell::num(
                s.pruned_fraction,
                format!("{:.1}%", s.pruned_fraction * 100.0),
            ),
            Cell::num(s.build_s, format!("{:.3}", s.build_s)),
            Cell::num(s.grid_s, format!("{:.3}", s.grid_s)),
            Cell::num(s.unpacked_s, format!("{:.3}", s.unpacked_s)),
            Cell::num(
                s.packed_vs_unpacked(),
                format!("{:.1}x", s.packed_vs_unpacked()),
            ),
            match s.all_pairs_s {
                Some(v) => Cell::num(v, format!("{v:.3}")),
                None => Cell::num(
                    s.all_pairs_projected_s,
                    format!("~{:.1}", s.all_pairs_projected_s),
                ),
            },
            Cell::num(s.speedup(), format!("{:.1}x", s.speedup())),
            Cell::num(
                s.model_speedup,
                format!(
                    "{:.1}x {}",
                    s.model_speedup,
                    if s.model_picks_grid {
                        "grid"
                    } else {
                        "allpairs"
                    }
                ),
            ),
        ]);
        rep.metric(&format!("grid_vs_allpairs.n{}", s.n), s.speedup(), "x")?;
        rep.metric(
            &format!("pruned_pair_fraction.n{}", s.n),
            s.pruned_fraction,
            "frac",
        )?;
        rep.metric(&format!("grid_s.n{}", s.n), s.grid_s, "s")?;
        rep.metric(
            &format!("packed_vs_unpacked.n{}", s.n),
            s.packed_vs_unpacked(),
            "x",
        )?;
        rep.metric(&format!("model_speedup.n{}", s.n), s.model_speedup, "x")?;
        rep.metric(
            &format!("model_agreement.n{}", s.n),
            if s.model_agrees() { 1.0 } else { 0.0 },
            "bool",
        )?;
    }
    rep.push_table(t);
    rep.push_note(
        "wall clock of the same compiled interpreter executing only the candidate\n\
         cell pairs the min-distance cull leaves alive, vs the monolithic all-pairs\n\
         launch. grid_s is the default packed route (segmented multi-cell-pair\n\
         launches, O(population classes) launches); unpacked_s reruns the same\n\
         catalog one launch per cell pair, and packed_x is their ratio. Counts\n\
         are bit-identical across the packed route, the per-cell-pair route,\n\
         the all-pairs route and the CPU grid oracle wherever each is measured.\n\
         allpairs_s\n\
         values prefixed '~' are quadratic projections from the anchor size —\n\
         measuring a ~200 s O(N^2) route on every sweep is the footgun the grid\n\
         exists to remove; `gridpath_baseline --full` measures them directly.\n\
         model_x is the SpatialPlan analytic model's predicted speedup from the\n\
         same pruning stats on the *modeled* GPU, whose per-launch floor keeps\n\
         all-pairs ahead at small N; the route must flip to the grid by N=1M.",
    );
    Ok(rep)
}
