//! **Tables II, III, IV** — profiler-style reports.
//!
//! * Table II: utilization of GPU resources for the 2-PCF kernels
//!   (arithmetic / control-flow / bottleneck memory unit).
//! * Table III: achieved bandwidth of memory units for the SDH kernels
//!   (shared / L2 / data cache / global load).
//! * Table IV: utilization of GPU resources for the SDH kernels.

use crate::experiments::fig4::SDH_BUCKETS;
use crate::paper_workload;
use gpu_sim::{DeviceConfig, KernelProfile};
use tbs_core::analytic::{predicted_run, InputPath, KernelSpec, OutputPath};

/// Profile the four 2-PCF kernels of Table II at size `n`.
pub fn table2_profiles(n: u32, cfg: &DeviceConfig) -> Vec<(String, KernelProfile)> {
    let wl = paper_workload(n);
    [
        ("Naive", InputPath::Naive),
        ("SHM-SHM", InputPath::ShmShm),
        ("Reg-SHM", InputPath::RegisterShm),
        ("Reg-ROC", InputPath::RegisterRoc),
    ]
    .into_iter()
    .map(|(label, input)| {
        let run = predicted_run(&wl, &KernelSpec::new(input, OutputPath::RegisterCount), cfg);
        (label.to_string(), run.profile)
    })
    .collect()
}

/// Profile the four SDH kernels of Tables III/IV at size `n`.
pub fn sdh_profiles(n: u32, cfg: &DeviceConfig) -> Vec<(String, KernelProfile)> {
    let wl = paper_workload(n);
    let priv_out = OutputPath::SharedHistogram {
        buckets: SDH_BUCKETS,
    };
    let glob_out = OutputPath::GlobalHistogram {
        buckets: SDH_BUCKETS,
    };
    [
        ("Naive", InputPath::Naive, glob_out),
        ("Naive-Out", InputPath::Naive, priv_out),
        ("Reg-SHM-Out", InputPath::RegisterShm, priv_out),
        ("Reg-ROC-Out", InputPath::RegisterRoc, priv_out),
    ]
    .into_iter()
    .map(|(label, input, output)| {
        let run = predicted_run(&wl, &KernelSpec::new(input, output), cfg);
        (label.to_string(), run.profile)
    })
    .collect()
}

fn utilization_table(
    title: &str,
    paper_note: &str,
    profiles: &[(String, KernelProfile)],
) -> String {
    let mut out = format!("{title}\n\n");
    out.push_str(&format!(
        "{:<14} {:>10} {:>12}   {}\n",
        "Kernel", "Arithmetic", "Control-flow", "Memory (bottleneck unit)"
    ));
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for (label, p) in profiles {
        out.push_str(&format!(
            "{:<14} {:>9.0}% {:>11.0}%   {:>5.1}% ({})\n",
            label,
            p.arithmetic_utilization * 100.0,
            p.control_flow_utilization * 100.0,
            p.memory_utilization * 100.0,
            p.memory_bottleneck.name()
        ));
    }
    out.push('\n');
    out.push_str(paper_note);
    out.push('\n');
    out
}

/// Render Table II.
pub fn table2_report(n: u32, cfg: &DeviceConfig) -> String {
    utilization_table(
        &format!("Table II — utilization of GPU resources, 2-PCF kernels (N = {n})"),
        "paper: Naive 15%/3%/76%(L2)  SHM-SHM 50%/7%/35%(shared)\n\
         \u{20}      Reg-SHM 52%/11%/35%(shared)  Reg-ROC 24%/10%/65%(data cache)",
        &table2_profiles(n, cfg),
    )
}

/// Render Table III.
pub fn table3_report(n: u32, cfg: &DeviceConfig) -> String {
    let profiles = sdh_profiles(n, cfg);
    let mut out =
        format!("Table III — achieved bandwidth of memory units, SDH kernels (N = {n})\n\n");
    out.push_str(&format!(
        "{:<14} {:>11} {:>11} {:>11} {:>11}\n",
        "Kernel", "Shared", "L2", "Data cache", "Global load"
    ));
    out.push_str(&"-".repeat(64));
    out.push('\n');
    for (label, p) in &profiles {
        out.push_str(&format!(
            "{:<14} {:>11} {:>11} {:>11} {:>11}\n",
            label,
            crate::table::fmt_bw(p.bandwidth.shared_gbps),
            crate::table::fmt_bw(p.bandwidth.l2_gbps),
            crate::table::fmt_bw(p.bandwidth.roc_gbps),
            crate::table::fmt_bw(p.bandwidth.global_load_gbps),
        ));
    }
    out.push_str(
        "\npaper: Naive 0/270GB/32GB/104GB  Naive-Out 1.66TB/437GB/138GB/563GB\n\
         \u{20}      Reg-SHM-Out 2.86TB/10GB/3GB/10GB  Reg-ROC-Out 2.59TB/55GB/267GB/68GB\n",
    );
    out
}

/// Render Table IV.
pub fn table4_report(n: u32, cfg: &DeviceConfig) -> String {
    utilization_table(
        &format!("Table IV — utilization of GPU resources, SDH kernels (N = {n})"),
        "paper: Naive 5%/–/Max(L2)  Naive-Out 23%/5%/Max(L2)\n\
         \u{20}      Reg-SHM-Out 25%/5%/95.3%(shared)  Reg-ROC-Out 20%/5%/86.3%(shared)+26.7%(ROC)",
        &sdh_profiles(n, cfg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Resource;

    const N: u32 = 512 * 1024;

    #[test]
    fn table2_shape_matches_paper() {
        let cfg = DeviceConfig::titan_x();
        let p = table2_profiles(N, &cfg);
        let by_name = |n: &str| &p.iter().find(|(l, _)| l == n).unwrap().1;
        let naive = by_name("Naive");
        let shm = by_name("SHM-SHM");
        let reg = by_name("Reg-SHM");
        let roc = by_name("Reg-ROC");
        // Naive: low arithmetic utilization, L2-bound memory.
        assert!(
            naive.arithmetic_utilization < 0.35,
            "{}",
            naive.arithmetic_utilization
        );
        assert_eq!(naive.memory_bottleneck, Resource::L2);
        // Tiled SHM kernels: high arithmetic utilization (paper ≥ 50 %).
        assert!(
            reg.arithmetic_utilization > 0.4,
            "{}",
            reg.arithmetic_utilization
        );
        assert!(
            shm.arithmetic_utilization > 0.4,
            "{}",
            shm.arithmetic_utilization
        );
        // Reg-ROC: lower arithmetic than the SHM kernels (paper 24 %).
        assert!(roc.arithmetic_utilization < reg.arithmetic_utilization);
    }

    #[test]
    fn table3_shape_matches_paper() {
        let cfg = DeviceConfig::titan_x();
        let p = sdh_profiles(N, &cfg);
        let by_name = |n: &str| &p.iter().find(|(l, _)| l == n).unwrap().1;
        // Reg-SHM-Out: multi-TB/s shared traffic, negligible L2/ROC.
        let rs = by_name("Reg-SHM-Out");
        assert!(
            rs.bandwidth.shared_gbps > 1500.0,
            "{}",
            rs.bandwidth.shared_gbps
        );
        assert!(rs.bandwidth.l2_gbps < 100.0);
        // Reg-ROC-Out: high shared AND high data-cache traffic.
        let rr = by_name("Reg-ROC-Out");
        assert!(rr.bandwidth.shared_gbps > 500.0);
        assert!(rr.bandwidth.roc_gbps > 100.0, "{}", rr.bandwidth.roc_gbps);
        // Naive (global atomics): zero shared traffic.
        let nv = by_name("Naive");
        assert_eq!(nv.bandwidth.shared_gbps, 0.0);
    }

    #[test]
    fn table4_shape_matches_paper() {
        let cfg = DeviceConfig::titan_x();
        let p = sdh_profiles(N, &cfg);
        let by_name = |n: &str| &p.iter().find(|(l, _)| l == n).unwrap().1;
        // Reg-SHM-Out is shared-memory-bound at very high utilization
        // (paper 95.3 %).
        let rs = by_name("Reg-SHM-Out");
        assert_eq!(rs.memory_bottleneck, Resource::SharedMem);
        assert!(rs.shared_utilization > 0.7, "{}", rs.shared_utilization);
        // Reg-ROC-Out uses both cache systems.
        let rr = by_name("Reg-ROC-Out");
        assert!(rr.shared_utilization > 0.3);
        assert!(rr.roc_utilization > 0.2, "{}", rr.roc_utilization);
    }

    #[test]
    fn reports_render() {
        let cfg = DeviceConfig::titan_x();
        for rep in [
            table2_report(N, &cfg),
            table3_report(N, &cfg),
            table4_report(N, &cfg),
        ] {
            assert!(rep.contains("paper:"));
            assert!(rep.lines().count() > 6);
        }
    }
}
