//! **Tables II, III, IV** — profiler-style reports.
//!
//! * Table II: utilization of GPU resources for the 2-PCF kernels
//!   (arithmetic / control-flow / bottleneck memory unit).
//! * Table III: achieved bandwidth of memory units for the SDH kernels
//!   (shared / L2 / data cache / global load).
//! * Table IV: utilization of GPU resources for the SDH kernels.

use crate::experiments::fig4::SDH_BUCKETS;
use crate::paper_workload;
use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::{DeviceConfig, KernelProfile, Resource};
use tbs_core::analytic::{predicted_run, InputPath, KernelSpec, OutputPath};

/// Profile the four 2-PCF kernels of Table II at size `n`.
pub fn table2_profiles(n: u32, cfg: &DeviceConfig) -> Vec<(String, KernelProfile)> {
    let wl = paper_workload(n);
    [
        ("Naive", InputPath::Naive),
        ("SHM-SHM", InputPath::ShmShm),
        ("Reg-SHM", InputPath::RegisterShm),
        ("Reg-ROC", InputPath::RegisterRoc),
    ]
    .into_iter()
    .map(|(label, input)| {
        let run = predicted_run(&wl, &KernelSpec::new(input, OutputPath::RegisterCount), cfg);
        (label.to_string(), run.profile)
    })
    .collect()
}

/// Profile the four SDH kernels of Tables III/IV at size `n`.
pub fn sdh_profiles(n: u32, cfg: &DeviceConfig) -> Vec<(String, KernelProfile)> {
    let wl = paper_workload(n);
    let priv_out = OutputPath::SharedHistogram {
        buckets: SDH_BUCKETS,
    };
    let glob_out = OutputPath::GlobalHistogram {
        buckets: SDH_BUCKETS,
    };
    [
        ("Naive", InputPath::Naive, glob_out),
        ("Naive-Out", InputPath::Naive, priv_out),
        ("Reg-SHM-Out", InputPath::RegisterShm, priv_out),
        ("Reg-ROC-Out", InputPath::RegisterRoc, priv_out),
    ]
    .into_iter()
    .map(|(label, input, output)| {
        let run = predicted_run(&wl, &KernelSpec::new(input, output), cfg);
        (label.to_string(), run.profile)
    })
    .collect()
}

/// Shared layout of the two utilization tables (II and IV).
fn utilization_series(profiles: &[(String, KernelProfile)]) -> SeriesTable {
    let mut t = SeriesTable::new(
        "utilization",
        &[
            "Kernel",
            "Arithmetic",
            "Control-flow",
            "Memory",
            "Bottleneck",
        ],
    );
    for (label, p) in profiles {
        t.row(vec![
            Cell::text(label.as_str()),
            Cell::pct(p.arithmetic_utilization),
            Cell::pct(p.control_flow_utilization),
            Cell::pct(p.memory_utilization),
            Cell::text(p.memory_bottleneck.name()),
        ]);
    }
    t
}

fn profile_of<'a>(
    profiles: &'a [(String, KernelProfile)],
    label: &str,
) -> Result<&'a KernelProfile, ReportError> {
    profiles
        .iter()
        .find(|(l, _)| l == label)
        .map(|(_, p)| p)
        .ok_or_else(|| ReportError::EmptySeries {
            what: format!("profile for kernel `{label}`"),
        })
}

/// Build the structured Table-II report (utilization + gate metrics).
pub fn build_table2_report(n: u32, cfg: &DeviceConfig) -> Result<Report, ReportError> {
    let profiles = table2_profiles(n, cfg);
    let mut rep = Report::new(
        "table2",
        "Table II — utilization of GPU resources, 2-PCF kernels",
    )
    .with_context(&format!("N = {n}"));
    rep.push_table(utilization_series(&profiles));

    let naive = profile_of(&profiles, "Naive")?;
    let reg = profile_of(&profiles, "Reg-SHM")?;
    rep.metric(
        "naive.arithmetic_utilization",
        naive.arithmetic_utilization,
        "frac",
    )?;
    rep.metric(
        "reg_shm.arithmetic_utilization",
        reg.arithmetic_utilization,
        "frac",
    )?;
    // Bottleneck identity encoded as 0/1 so the gate can pin it.
    rep.metric(
        "naive.memory_is_l2",
        (naive.memory_bottleneck == Resource::L2) as u32 as f64,
        "bool",
    )?;
    rep.push_note(
        "paper: Naive 15%/3%/76%(L2)  SHM-SHM 50%/7%/35%(shared)\n\
         \u{20}      Reg-SHM 52%/11%/35%(shared)  Reg-ROC 24%/10%/65%(data cache)",
    );
    rep.profiles = profiles;
    Ok(rep)
}

/// Build the structured Table-III report (bandwidths + gate metric).
pub fn build_table3_report(n: u32, cfg: &DeviceConfig) -> Result<Report, ReportError> {
    let profiles = sdh_profiles(n, cfg);
    let mut rep = Report::new(
        "table3",
        "Table III — achieved bandwidth of memory units, SDH kernels",
    )
    .with_context(&format!("N = {n}"));
    let mut t = SeriesTable::new(
        "bandwidth",
        &["Kernel", "Shared", "L2", "Data cache", "Global load"],
    );
    for (label, p) in &profiles {
        t.row(vec![
            Cell::text(label.as_str()),
            Cell::bw(p.bandwidth.shared_gbps),
            Cell::bw(p.bandwidth.l2_gbps),
            Cell::bw(p.bandwidth.roc_gbps),
            Cell::bw(p.bandwidth.global_load_gbps),
        ]);
    }
    rep.push_table(t);

    let rs = profile_of(&profiles, "Reg-SHM-Out")?;
    rep.metric("reg_shm_out.shared_gbps", rs.bandwidth.shared_gbps, "GB/s")?;
    rep.push_note(
        "paper: Naive 0/270GB/32GB/104GB  Naive-Out 1.66TB/437GB/138GB/563GB\n\
         \u{20}      Reg-SHM-Out 2.86TB/10GB/3GB/10GB  Reg-ROC-Out 2.59TB/55GB/267GB/68GB",
    );
    rep.profiles = profiles;
    Ok(rep)
}

/// Build the structured Table-IV report (utilization + gate metrics).
pub fn build_table4_report(n: u32, cfg: &DeviceConfig) -> Result<Report, ReportError> {
    let profiles = sdh_profiles(n, cfg);
    let mut rep = Report::new(
        "table4",
        "Table IV — utilization of GPU resources, SDH kernels",
    )
    .with_context(&format!("N = {n}"));
    rep.push_table(utilization_series(&profiles));

    let rs = profile_of(&profiles, "Reg-SHM-Out")?;
    let rr = profile_of(&profiles, "Reg-ROC-Out")?;
    rep.metric(
        "reg_shm_out.shared_is_bottleneck",
        (rs.memory_bottleneck == Resource::SharedMem) as u32 as f64,
        "bool",
    )?;
    rep.metric("reg_roc_out.roc_utilization", rr.roc_utilization, "frac")?;
    rep.push_note(
        "paper: Naive 5%/–/Max(L2)  Naive-Out 23%/5%/Max(L2)\n\
         \u{20}      Reg-SHM-Out 25%/5%/95.3%(shared)  Reg-ROC-Out 20%/5%/86.3%(shared)+26.7%(ROC)",
    );
    rep.profiles = profiles;
    Ok(rep)
}

/// Render Table II.
pub fn table2_report(n: u32, cfg: &DeviceConfig) -> String {
    match build_table2_report(n, cfg) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("table2 report failed: {e}"),
    }
}

/// Render Table III.
pub fn table3_report(n: u32, cfg: &DeviceConfig) -> String {
    match build_table3_report(n, cfg) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("table3 report failed: {e}"),
    }
}

/// Render Table IV.
pub fn table4_report(n: u32, cfg: &DeviceConfig) -> String {
    match build_table4_report(n, cfg) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("table4 report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Resource;

    const N: u32 = 512 * 1024;

    #[test]
    fn table2_shape_matches_paper() {
        let cfg = DeviceConfig::titan_x();
        let p = table2_profiles(N, &cfg);
        let by_name = |n: &str| &p.iter().find(|(l, _)| l == n).unwrap().1;
        let naive = by_name("Naive");
        let shm = by_name("SHM-SHM");
        let reg = by_name("Reg-SHM");
        let roc = by_name("Reg-ROC");
        // Naive: low arithmetic utilization, L2-bound memory.
        assert!(
            naive.arithmetic_utilization < 0.35,
            "{}",
            naive.arithmetic_utilization
        );
        assert_eq!(naive.memory_bottleneck, Resource::L2);
        // Tiled SHM kernels: high arithmetic utilization (paper ≥ 50 %).
        assert!(
            reg.arithmetic_utilization > 0.4,
            "{}",
            reg.arithmetic_utilization
        );
        assert!(
            shm.arithmetic_utilization > 0.4,
            "{}",
            shm.arithmetic_utilization
        );
        // Reg-ROC: lower arithmetic than the SHM kernels (paper 24 %).
        assert!(roc.arithmetic_utilization < reg.arithmetic_utilization);
    }

    #[test]
    fn table3_shape_matches_paper() {
        let cfg = DeviceConfig::titan_x();
        let p = sdh_profiles(N, &cfg);
        let by_name = |n: &str| &p.iter().find(|(l, _)| l == n).unwrap().1;
        // Reg-SHM-Out: multi-TB/s shared traffic, negligible L2/ROC.
        let rs = by_name("Reg-SHM-Out");
        assert!(
            rs.bandwidth.shared_gbps > 1500.0,
            "{}",
            rs.bandwidth.shared_gbps
        );
        assert!(rs.bandwidth.l2_gbps < 100.0);
        // Reg-ROC-Out: high shared AND high data-cache traffic.
        let rr = by_name("Reg-ROC-Out");
        assert!(rr.bandwidth.shared_gbps > 500.0);
        assert!(rr.bandwidth.roc_gbps > 100.0, "{}", rr.bandwidth.roc_gbps);
        // Naive (global atomics): zero shared traffic.
        let nv = by_name("Naive");
        assert_eq!(nv.bandwidth.shared_gbps, 0.0);
    }

    #[test]
    fn table4_shape_matches_paper() {
        let cfg = DeviceConfig::titan_x();
        let p = sdh_profiles(N, &cfg);
        let by_name = |n: &str| &p.iter().find(|(l, _)| l == n).unwrap().1;
        // Reg-SHM-Out is shared-memory-bound at very high utilization
        // (paper 95.3 %).
        let rs = by_name("Reg-SHM-Out");
        assert_eq!(rs.memory_bottleneck, Resource::SharedMem);
        assert!(rs.shared_utilization > 0.7, "{}", rs.shared_utilization);
        // Reg-ROC-Out uses both cache systems.
        let rr = by_name("Reg-ROC-Out");
        assert!(rr.shared_utilization > 0.3);
        assert!(rr.roc_utilization > 0.2, "{}", rr.roc_utilization);
    }

    #[test]
    fn reports_render() {
        let cfg = DeviceConfig::titan_x();
        for rep in [
            table2_report(N, &cfg),
            table3_report(N, &cfg),
            table4_report(N, &cfg),
        ] {
            assert!(rep.contains("paper:"));
            assert!(rep.lines().count() > 6);
        }
    }
}
