//! **Figure 2** — "Performance of different GPU-based algorithms for
//! computing 2-PCF: total running time and speedup over naive algorithm."
//!
//! Workload: 2-point correlation function, 3-D uniform points, N from
//! 512 to 2 M, 1024 threads per block (§IV-B). Series: Naive, SHM-SHM,
//! Register-SHM, Register-ROC.
//!
//! Paper's reported shape: quadratic growth; Register-SHM best (avg
//! speedup 5.5×, max 6×); SHM-SHM close behind (5.3×); Register-ROC
//! least improved (4.7×, max 5×).

use crate::paper_workload;
use crate::report::{Cell, Report, ReportError, SeriesTable};
use crate::table::fmt_x;
use crate::try_geomean;
use gpu_sim::DeviceConfig;
use tbs_core::analytic::{predicted_run, InputPath, KernelSpec, OutputPath};

/// The four kernels of Figure 2, in plot order.
pub const KERNELS: [InputPath; 4] = [
    InputPath::Naive,
    InputPath::ShmShm,
    InputPath::RegisterShm,
    InputPath::RegisterRoc,
];

/// One N point of the sweep.
#[derive(Debug, Clone)]
pub struct Row {
    pub n: u32,
    /// Seconds per kernel, indexed like [`KERNELS`].
    pub seconds: [f64; 4],
}

impl Row {
    /// Speedup of kernel `k` over Naive.
    pub fn speedup(&self, k: usize) -> f64 {
        self.seconds[0] / self.seconds[k]
    }
}

/// Predict the Figure-2 series over the given sizes.
pub fn series(sizes: &[u32], cfg: &DeviceConfig) -> Vec<Row> {
    sizes
        .iter()
        .map(|&n| {
            let wl = paper_workload(n);
            let seconds = std::array::from_fn(|k| {
                predicted_run(
                    &wl,
                    &KernelSpec::new(KERNELS[k], OutputPath::RegisterCount),
                    cfg,
                )
                .seconds()
            });
            Row { n, seconds }
        })
        .collect()
}

/// Build the structured Figure-2 report (tables + gate metrics).
pub fn build_report(sizes: &[u32], cfg: &DeviceConfig) -> Result<Report, ReportError> {
    let rows = series(sizes, cfg);
    let mut rep = Report::new(
        "fig2",
        "Figure 2 — 2-PCF: total running time and speedup over the naive kernel",
    )
    .with_context("uniform 3-D points, B = 1024, Euclidean distance");

    let mut t = SeriesTable::new(
        "times",
        &["N", "Naive", "SHM-SHM", "Register-SHM", "Register-ROC"],
    );
    for r in &rows {
        t.row(vec![
            Cell::int(r.n as u64),
            Cell::secs(r.seconds[0]),
            Cell::secs(r.seconds[1]),
            Cell::secs(r.seconds[2]),
            Cell::secs(r.seconds[3]),
        ]);
    }
    rep.push_table(t);

    let mut s = SeriesTable::new(
        "speedups",
        &["N", "SHM-SHM", "Register-SHM", "Register-ROC"],
    );
    for r in &rows {
        s.row(vec![
            Cell::int(r.n as u64),
            Cell::x(r.speedup(1)),
            Cell::x(r.speedup(2)),
            Cell::x(r.speedup(3)),
        ]);
    }
    rep.push_table(s);

    // Average over the saturated regime the paper plots (N ≥ 100 K).
    let saturated: Vec<&Row> = rows.iter().filter(|r| r.n >= 100_000).collect();
    let speedups = |k: usize| -> Vec<f64> { saturated.iter().map(|r| r.speedup(k)).collect() };
    let avg = [
        try_geomean("fig2 SHM-SHM saturated speedups", &speedups(1))?,
        try_geomean("fig2 Register-SHM saturated speedups", &speedups(2))?,
        try_geomean("fig2 Register-ROC saturated speedups", &speedups(3))?,
    ];
    rep.metric("speedup.shm_shm.geomean_saturated", avg[0], "x")?;
    rep.metric("speedup.register_shm.geomean_saturated", avg[1], "x")?;
    rep.metric("speedup.register_roc.geomean_saturated", avg[2], "x")?;

    // Paper-shape invariants the perf gate pins: Register-SHM ≥ 4× at
    // every fully saturated size, and SHM-SHM never beats Register-SHM.
    let deep: Vec<&&Row> = saturated.iter().filter(|r| r.n >= 400_000).collect();
    if deep.is_empty() {
        return Err(ReportError::EmptySeries {
            what: "fig2 N >= 400K rows".to_string(),
        });
    }
    let reg_min = deep
        .iter()
        .map(|r| r.speedup(2))
        .fold(f64::INFINITY, f64::min);
    let shm_over_reg = deep
        .iter()
        .map(|r| r.speedup(1) / r.speedup(2))
        .fold(f64::NEG_INFINITY, f64::max);
    rep.metric("invariant.register_shm_min_saturated", reg_min, "x")?;
    rep.metric("invariant.shm_over_register_shm_max", shm_over_reg, "ratio")?;

    rep.push_note(&format!(
        "average speedup over naive:  SHM-SHM {}  Register-SHM {}  Register-ROC {}\n\
         paper:                       SHM-SHM 5.3x Register-SHM 5.5x Register-ROC 4.7x",
        fmt_x(avg[0]),
        fmt_x(avg[1]),
        fmt_x(avg[2]),
    ));
    Ok(rep)
}

/// Render the full Figure-2 report.
pub fn report(sizes: &[u32], cfg: &DeviceConfig) -> String {
    match build_report(sizes, cfg) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("fig2 report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbs_datagen::paper_sweep;

    #[test]
    fn shape_matches_paper_claims() {
        let cfg = DeviceConfig::titan_x();
        let sizes = paper_sweep(6, 1024);
        let rows = series(&sizes, &cfg);
        // Quadratic growth once the device is saturated (small N cannot
        // even fill the grid — the paper's log-log plot flattens there
        // too).
        let big: Vec<&Row> = rows.iter().filter(|r| r.n >= 100_000).collect();
        let (first, last) = (big[0], big[big.len() - 1]);
        let growth = last.seconds[2] / first.seconds[2];
        let expected = (last.n as f64 / first.n as f64).powi(2);
        assert!(
            growth > expected * 0.3 && growth < expected * 3.0,
            "growth {growth} vs quadratic {expected}"
        );
        // At paper scale (≥ 400 K), ordering + factors.
        for r in rows.iter().filter(|r| r.n >= 400_000) {
            let (shm, reg, roc) = (r.speedup(1), r.speedup(2), r.speedup(3));
            assert!(
                reg >= shm * 0.99,
                "Register-SHM must win: {reg} vs {shm} at {}",
                r.n
            );
            assert!(roc < reg, "Register-ROC least improved at {}", r.n);
            assert!(
                (3.0..9.0).contains(&reg),
                "Register-SHM speedup {reg} at N={}",
                r.n
            );
            assert!(
                (2.5..8.0).contains(&roc),
                "Register-ROC speedup {roc} at N={}",
                r.n
            );
        }
    }

    #[test]
    fn report_renders() {
        let cfg = DeviceConfig::titan_x();
        let rep = report(&[102_400, 409_600], &cfg);
        assert!(rep.contains("Register-SHM"));
        assert!(rep.contains("average speedup"));
    }

    #[test]
    fn build_report_rejects_unsaturated_sweeps() {
        // A sweep with no saturated sizes cannot support the paper's
        // speedup claims — the reporting path must say so, not emit NaN.
        let cfg = DeviceConfig::titan_x();
        let err = build_report(&[1024, 2048], &cfg).unwrap_err();
        assert!(matches!(
            err,
            crate::report::ReportError::EmptySeries { .. }
        ));
    }

    #[test]
    fn build_report_exposes_gate_metrics() {
        let cfg = DeviceConfig::titan_x();
        let rep = build_report(&paper_sweep(6, 1024), &cfg).unwrap();
        let reg = rep
            .metric_value("speedup.register_shm.geomean_saturated")
            .unwrap();
        assert!(reg > 4.0, "Register-SHM geomean {reg}");
        assert!(
            rep.metric_value("invariant.shm_over_register_shm_max")
                .unwrap()
                <= 1.01
        );
    }
}
