//! **Figure 2** — "Performance of different GPU-based algorithms for
//! computing 2-PCF: total running time and speedup over naive algorithm."
//!
//! Workload: 2-point correlation function, 3-D uniform points, N from
//! 512 to 2 M, 1024 threads per block (§IV-B). Series: Naive, SHM-SHM,
//! Register-SHM, Register-ROC.
//!
//! Paper's reported shape: quadratic growth; Register-SHM best (avg
//! speedup 5.5×, max 6×); SHM-SHM close behind (5.3×); Register-ROC
//! least improved (4.7×, max 5×).

use crate::table::{fmt_secs, fmt_x, Table};
use crate::{geomean, paper_workload};
use gpu_sim::DeviceConfig;
use tbs_core::analytic::{predicted_run, InputPath, KernelSpec, OutputPath};

/// The four kernels of Figure 2, in plot order.
pub const KERNELS: [InputPath; 4] = [
    InputPath::Naive,
    InputPath::ShmShm,
    InputPath::RegisterShm,
    InputPath::RegisterRoc,
];

/// One N point of the sweep.
#[derive(Debug, Clone)]
pub struct Row {
    pub n: u32,
    /// Seconds per kernel, indexed like [`KERNELS`].
    pub seconds: [f64; 4],
}

impl Row {
    /// Speedup of kernel `k` over Naive.
    pub fn speedup(&self, k: usize) -> f64 {
        self.seconds[0] / self.seconds[k]
    }
}

/// Predict the Figure-2 series over the given sizes.
pub fn series(sizes: &[u32], cfg: &DeviceConfig) -> Vec<Row> {
    sizes
        .iter()
        .map(|&n| {
            let wl = paper_workload(n);
            let seconds = std::array::from_fn(|k| {
                predicted_run(
                    &wl,
                    &KernelSpec::new(KERNELS[k], OutputPath::RegisterCount),
                    cfg,
                )
                .seconds()
            });
            Row { n, seconds }
        })
        .collect()
}

/// Render the full Figure-2 report.
pub fn report(sizes: &[u32], cfg: &DeviceConfig) -> String {
    let rows = series(sizes, cfg);
    let mut out = String::from(
        "Figure 2 — 2-PCF: total running time and speedup over the naive kernel\n\
         (uniform 3-D points, B = 1024, Euclidean distance)\n\n",
    );
    let mut t = Table::new(&["N", "Naive", "SHM-SHM", "Register-SHM", "Register-ROC"]);
    for r in &rows {
        t.row(&[
            r.n.to_string(),
            fmt_secs(r.seconds[0]),
            fmt_secs(r.seconds[1]),
            fmt_secs(r.seconds[2]),
            fmt_secs(r.seconds[3]),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    let mut s = Table::new(&["N", "SHM-SHM", "Register-SHM", "Register-ROC"]);
    for r in &rows {
        s.row(&[
            r.n.to_string(),
            fmt_x(r.speedup(1)),
            fmt_x(r.speedup(2)),
            fmt_x(r.speedup(3)),
        ]);
    }
    out.push_str(&s.render());
    // Average over the saturated regime the paper plots (N ≥ 400 K).
    let avg = |k: usize| {
        geomean(
            &rows
                .iter()
                .filter(|r| r.n >= 100_000)
                .map(|r| r.speedup(k))
                .collect::<Vec<_>>(),
        )
    };
    out.push_str(&format!(
        "\naverage speedup over naive:  SHM-SHM {}  Register-SHM {}  Register-ROC {}\n\
         paper:                       SHM-SHM 5.3x Register-SHM 5.5x Register-ROC 4.7x\n",
        fmt_x(avg(1)),
        fmt_x(avg(2)),
        fmt_x(avg(3)),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbs_datagen::paper_sweep;

    #[test]
    fn shape_matches_paper_claims() {
        let cfg = DeviceConfig::titan_x();
        let sizes = paper_sweep(6, 1024);
        let rows = series(&sizes, &cfg);
        // Quadratic growth once the device is saturated (small N cannot
        // even fill the grid — the paper's log-log plot flattens there
        // too).
        let big: Vec<&Row> = rows.iter().filter(|r| r.n >= 100_000).collect();
        let (first, last) = (big[0], big[big.len() - 1]);
        let growth = last.seconds[2] / first.seconds[2];
        let expected = (last.n as f64 / first.n as f64).powi(2);
        assert!(
            growth > expected * 0.3 && growth < expected * 3.0,
            "growth {growth} vs quadratic {expected}"
        );
        // At paper scale (≥ 400 K), ordering + factors.
        for r in rows.iter().filter(|r| r.n >= 400_000) {
            let (shm, reg, roc) = (r.speedup(1), r.speedup(2), r.speedup(3));
            assert!(
                reg >= shm * 0.99,
                "Register-SHM must win: {reg} vs {shm} at {}",
                r.n
            );
            assert!(roc < reg, "Register-ROC least improved at {}", r.n);
            assert!(
                (3.0..9.0).contains(&reg),
                "Register-SHM speedup {reg} at N={}",
                r.n
            );
            assert!(
                (2.5..8.0).contains(&roc),
                "Register-ROC speedup {roc} at N={}",
                r.n
            );
        }
    }

    #[test]
    fn report_renders() {
        let cfg = DeviceConfig::titan_x();
        let rep = report(&[102_400, 409_600], &cfg);
        assert!(rep.contains("Register-SHM"));
        assert!(rep.contains("average speedup"));
    }
}
