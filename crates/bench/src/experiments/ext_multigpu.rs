//! **Extension: multi-GPU decomposition** — the paper's §V future work
//! ("extended to a multi-GPU environment ... to handle very large
//! input/output data").
//!
//! Functional study: the SDH pair triangle is chunked into self- and
//! cross-join tasks, LPT-scheduled across simulated devices
//! (`tbs_apps::multi_gpu`). Run on a deliberately small device profile
//! (4 SMs) so the functional workload sizes this host can execute still
//! *saturate* each device — on a full Titan X the same N would be
//! grid-limited and splitting would not help, which the negative-control
//! unit test documents.

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::DeviceConfig;
use tbs_apps::multi_gpu::sdh_multi_gpu;
use tbs_apps::PairwisePlan;
use tbs_core::HistogramSpec;
use tbs_datagen::{box_diagonal, uniform_points, DEFAULT_BOX};

/// The scaled-down device used for the functional scaling study.
pub fn study_device() -> DeviceConfig {
    DeviceConfig {
        num_sms: 4,
        max_blocks_per_sm: 4,
        ..DeviceConfig::titan_x()
    }
}

/// One device-count sample.
#[derive(Debug, Clone)]
pub struct Row {
    pub devices: usize,
    pub makespan: f64,
    pub speedup: f64,
    pub efficiency: f64,
    pub tasks: usize,
}

/// Sweep device counts for an N-point SDH. A device count whose
/// simulation faults is reported and skipped; the rest of the sweep runs.
pub fn series(n: usize, block: u32, device_counts: &[usize]) -> Vec<Row> {
    let pts = uniform_points::<3>(n, DEFAULT_BOX, 3);
    let spec = HistogramSpec::new(256, box_diagonal(DEFAULT_BOX, 3));
    let cfg = study_device();
    let plan = PairwisePlan::register_shm(block);
    let baseline = match sdh_multi_gpu(&pts, spec, plan, 1, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ext_multigpu: single-device baseline faulted: {e}");
            return Vec::new();
        }
    };
    let base = baseline.makespan();
    device_counts
        .iter()
        .filter_map(|&g| {
            let r = match sdh_multi_gpu(&pts, spec, plan, g, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("ext_multigpu: skipping G = {g}: {e}");
                    return None;
                }
            };
            assert_eq!(
                r.histogram, baseline.histogram,
                "decomposition must preserve the histogram"
            );
            Some(Row {
                devices: g,
                makespan: r.makespan(),
                speedup: base / r.makespan(),
                efficiency: r.efficiency(),
                tasks: r.schedule.len(),
            })
        })
        .collect()
}

/// Build the structured functional multi-GPU report.
pub fn build_report(n: usize, block: u32) -> Result<Report, ReportError> {
    let rows = series(n, block, &[1, 2, 3, 4]);
    let mut rep = Report::new("ext_multigpu", "Extension — multi-GPU SDH decomposition")
        .with_context(&format!(
            "functional, N = {n}, B = {block}, scaled 4-SM device so the workload \
             saturates each GPU"
        ));
    let mut t = SeriesTable::new(
        "scaling",
        &["devices", "tasks", "makespan", "speedup", "efficiency"],
    );
    for r in &rows {
        t.row(vec![
            Cell::int(r.devices as u64),
            Cell::int(r.tasks as u64),
            Cell::secs(r.makespan),
            Cell::num(r.speedup, format!("{:.2}x", r.speedup)),
            Cell::pct(r.efficiency),
        ]);
    }
    rep.push_table(t);

    let at = |g: usize| -> Result<&Row, ReportError> {
        rows.iter()
            .find(|r| r.devices == g)
            .ok_or_else(|| ReportError::EmptySeries {
                what: format!("ext_multigpu G = {g} row"),
            })
    };
    rep.metric("speedup.2dev", at(2)?.speedup, "x")?;
    rep.metric(
        "speedup.4dev_over_2dev",
        at(4)?.speedup / at(2)?.speedup,
        "ratio",
    )?;
    rep.push_note(
        "the chunked self/cross task graph scales to multiple devices with\n\
         O(G·H) inter-device traffic; LPT scheduling keeps the devices balanced.",
    );
    Ok(rep)
}

/// Render the multi-GPU report.
pub fn report(n: usize, block: u32) -> String {
    match build_report(n, block) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("ext_multigpu report failed: {e}"),
    }
}

// ====================================================================
// paper-scale prediction (closed forms; N = 2M is far beyond functional
// execution but trivial for the validated analytic profiles)
// ====================================================================

/// Predicted makespan of the chunked decomposition at paper scale on the
/// full Titan X, using the validated closed-form profiles for self
/// (Register-SHM) and cross (CrossShm) tasks plus per-task reductions.
pub fn predicted_makespan(
    n: u32,
    b: u32,
    buckets: u32,
    devices: usize,
    cfg: &DeviceConfig,
) -> (f64, f64) {
    use tbs_apps::multi_gpu::{chunk_ranges, lpt_schedule, SdhTask};
    use tbs_core::analytic::{
        predicted_cross_run, predicted_reduction_run, predicted_run, InputPath, KernelSpec,
        OutputPath, Workload,
    };
    let g = devices.max(1);
    let sizes: Vec<usize> = chunk_ranges(n as usize, g)
        .iter()
        .map(|r| r.len())
        .collect();
    let out = OutputPath::SharedHistogram { buckets };
    let mut tasks = Vec::new();
    for i in 0..g {
        tasks.push(SdhTask::SelfJoin { chunk: i });
        for j in (i + 1)..g {
            tasks.push(SdhTask::CrossJoin { left: i, right: j });
        }
    }
    let assignment = lpt_schedule(&tasks, &sizes, g);
    let task_secs = |t: &SdhTask| -> f64 {
        match *t {
            SdhTask::SelfJoin { chunk } => {
                let c = sizes[chunk] as u32;
                let wl = Workload {
                    n: c,
                    b,
                    dims: 3,
                    dist_cost: 7,
                };
                predicted_run(&wl, &KernelSpec::new(InputPath::RegisterShm, out), cfg).seconds()
                    + predicted_reduction_run(buckets, wl.m() as u32, cfg).seconds()
            }
            SdhTask::CrossJoin { left, right } => {
                let (a, c) = (sizes[left] as u32, sizes[right] as u32);
                predicted_cross_run(a, c, b, 3, 7, out, cfg).seconds()
                    + predicted_reduction_run(buckets, a.div_ceil(b), cfg).seconds()
            }
        }
    };
    let loads: Vec<f64> = assignment
        .iter()
        .map(|ts| ts.iter().map(task_secs).sum())
        .collect();
    let makespan = loads.iter().cloned().fold(0.0, f64::max);
    let eff = loads.iter().sum::<f64>() / (g as f64 * makespan.max(1e-30));
    (makespan, eff)
}

/// Build the paper-scale predicted-scaling report.
pub fn build_predicted_report(n: u32, cfg: &DeviceConfig) -> Result<Report, ReportError> {
    let mut rep = Report::new(
        "ext_multigpu_predicted",
        "Predicted multi-GPU scaling at paper scale",
    )
    .with_context(&format!(
        "N = {n}, B = 1024, 4096-bucket SDH on full Titan X devices; closed-form profiles"
    ));
    let (base, _) = predicted_makespan(n, 1024, 4096, 1, cfg);
    let mut t = SeriesTable::new("scaling", &["devices", "makespan", "speedup", "efficiency"]);
    let mut speedup4 = None;
    for g in [1usize, 2, 4, 8] {
        let (m, e) = predicted_makespan(n, 1024, 4096, g, cfg);
        t.row(vec![
            Cell::int(g as u64),
            Cell::secs(m),
            Cell::num(base / m, format!("{:.2}x", base / m)),
            Cell::pct(e),
        ]);
        if g == 4 {
            speedup4 = Some(base / m);
        }
    }
    rep.push_table(t);
    rep.metric(
        "speedup.4dev",
        speedup4.ok_or_else(|| ReportError::EmptySeries {
            what: "ext_multigpu_predicted G = 4 row".to_string(),
        })?,
        "x",
    )?;
    Ok(rep)
}

/// Render the paper-scale predicted-scaling section.
pub fn report_predicted(n: u32, cfg: &DeviceConfig) -> String {
    match build_predicted_report(n, cfg) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("ext_multigpu predicted report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_prediction_scales_well() {
        let cfg = DeviceConfig::titan_x();
        let (m1, _) = predicted_makespan(2_000_896, 1024, 4096, 1, &cfg);
        let (m4, e4) = predicted_makespan(2_000_896, 1024, 4096, 4, &cfg);
        let speedup = m1 / m4;
        assert!(
            (3.0..4.2).contains(&speedup),
            "4-device speedup {speedup:.2}"
        );
        assert!(e4 > 0.8, "efficiency {e4:.2}");
    }

    #[test]
    fn scaling_improves_with_devices() {
        let rows = series(2048, 64, &[1, 2, 4]);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        assert!(rows[1].speedup > 1.4, "2 devices: {:.2}", rows[1].speedup);
        assert!(rows[2].speedup > rows[1].speedup, "4 devices must beat 2");
        for r in &rows {
            assert!(
                r.efficiency > 0.4,
                "efficiency {:.2} at G={}",
                r.efficiency,
                r.devices
            );
        }
    }
}
