//! **Extension: block-size study** — the paper sets "the value of
//! threads per block to 1024, which is derived from an optimization
//! model developed in our previous work \[23\] — that model guarantees
//! best kernel performance among all possible parameters" (§IV-B).
//!
//! Our analytical model reproduces that choice from first principles:
//! sweep B and predict each kernel's time. Larger B means fewer, larger
//! tiles (less tile-staging and loop overhead per pair) until occupancy
//! or shared memory pushes back.

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::DeviceConfig;
use tbs_core::analytic::{predicted_run, InputPath, KernelSpec, OutputPath, Workload};

/// One (kernel, B) sample.
#[derive(Debug, Clone)]
pub struct Row {
    pub block: u32,
    pub seconds: f64,
    pub occupancy: f64,
}

/// Sweep block sizes for one kernel at size `n`.
pub fn series(n: u32, input: InputPath, output: OutputPath, cfg: &DeviceConfig) -> Vec<Row> {
    [32u32, 64, 128, 256, 512, 1024]
        .iter()
        .map(|&b| {
            let wl = Workload {
                n: n / b * b,
                b,
                dims: 3,
                dist_cost: 7,
            };
            let run = predicted_run(&wl, &KernelSpec::new(input, output), cfg);
            Row {
                block: b,
                seconds: run.seconds(),
                occupancy: run.occupancy.occupancy,
            }
        })
        .collect()
}

/// Build the structured block-size report.
pub fn build_report(n: u32, cfg: &DeviceConfig) -> Result<Report, ReportError> {
    let mut rep =
        Report::new("ext_blocksize", "Extension — block-size optimization").with_context(&format!(
            "2-PCF and SDH, N ≈ {n}; the paper fixes B = 1024 from its reference [23]'s model"
        ));
    let mut t = SeriesTable::new("sweep", &["kernel", "B", "time", "occupancy", "vs best"]);
    for (label, input, output) in [
        (
            "Register-SHM / 2-PCF",
            InputPath::RegisterShm,
            OutputPath::RegisterCount,
        ),
        (
            "Reg-ROC-Out / SDH (4096 buckets)",
            InputPath::RegisterRoc,
            OutputPath::SharedHistogram { buckets: 4096 },
        ),
    ] {
        let rows = series(n, input, output, cfg);
        let best = rows.iter().map(|r| r.seconds).fold(f64::INFINITY, f64::min);
        for r in &rows {
            t.row(vec![
                Cell::text(label),
                Cell::int(r.block as u64),
                Cell::secs(r.seconds),
                Cell::pct(r.occupancy),
                Cell::num(r.seconds / best, format!("{:.2}x", r.seconds / best)),
            ]);
        }
        if input == InputPath::RegisterShm {
            let b1024 =
                rows.iter()
                    .find(|r| r.block == 1024)
                    .ok_or_else(|| ReportError::EmptySeries {
                        what: "ext_blocksize B = 1024 row".to_string(),
                    })?;
            rep.metric("b1024_over_best", b1024.seconds / best, "ratio")?;
        }
    }
    rep.push_table(t);
    rep.push_note("large blocks amortize tile staging; B = 1024 is at or near the optimum.");
    Ok(rep)
}

/// Render the block-size report.
pub fn report(n: u32, cfg: &DeviceConfig) -> String {
    match build_report(n, cfg) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("ext_blocksize report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_papers_block_size_is_near_optimal() {
        let cfg = DeviceConfig::titan_x();
        let rows = series(
            1024 * 1024,
            InputPath::RegisterShm,
            OutputPath::RegisterCount,
            &cfg,
        );
        let best = rows.iter().map(|r| r.seconds).fold(f64::INFINITY, f64::min);
        let b1024 = rows.iter().find(|r| r.block == 1024).unwrap();
        assert!(
            b1024.seconds <= best * 1.1,
            "B=1024 ({}) must be within 10% of the best ({})",
            b1024.seconds,
            best
        );
        // And tiny blocks pay measurable tile-staging/loop overhead (the
        // model only counts instruction/sync costs, so the margin is
        // smaller than on real hardware where launch/barrier costs grow).
        let b32 = rows.iter().find(|r| r.block == 32).unwrap();
        assert!(
            b32.seconds > best * 1.03,
            "B=32 should pay overhead: {}",
            b32.seconds / best
        );
    }

    #[test]
    fn report_renders() {
        let rep = report(512 * 1024, &DeviceConfig::titan_x());
        assert!(rep.contains("B = 1024"));
    }
}
