//! **Figure 7** — "Performance of different GPU-based algorithm for
//! computing SDH: total running time and speedup over Register-SHM
//! kernel" (the load-balancing study, §IV-E1).
//!
//! The paper isolates the *intra-block* distance phase ("we only record
//! the time for processing intra-block distance function computations")
//! and compares the regular triangular loop against the `(t + j) mod B`
//! load-balanced pairing, reporting a 12–13 % improvement.

use crate::report::{Cell, Report, ReportError, SeriesTable};
use crate::try_geomean;
use gpu_sim::DeviceConfig;
use tbs_core::analytic::{predicted_intra_only_run, Workload};
use tbs_core::kernels::IntraMode;

/// One N sample: intra-phase-only times.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    pub n: u32,
    pub regular: f64,
    pub balanced: f64,
}

impl Row {
    pub fn speedup(&self) -> f64 {
        self.regular / self.balanced
    }
}

/// Predict the Figure-7 series (B = 1024, 3-D Euclidean).
pub fn series(sizes: &[u32], cfg: &DeviceConfig) -> Vec<Row> {
    sizes
        .iter()
        .map(|&n| {
            let wl = Workload {
                n,
                b: 1024,
                dims: 3,
                dist_cost: 7,
            };
            Row {
                n,
                regular: predicted_intra_only_run(&wl, IntraMode::Regular, cfg).seconds(),
                balanced: predicted_intra_only_run(&wl, IntraMode::LoadBalanced, cfg).seconds(),
            }
        })
        .collect()
}

/// The paper's Figure-7 sweep: 600 K → 3 M.
pub fn default_sizes() -> Vec<u32> {
    (1..=5).map(|i| i * 600 * 1024).collect()
}

/// Build the structured Figure-7 report (table + gate metric).
pub fn build_report(cfg: &DeviceConfig) -> Result<Report, ReportError> {
    let rows = series(&default_sizes(), cfg);
    let mut rep = Report::new(
        "fig7",
        "Figure 7 — intra-block phase: regular vs load-balanced iteration",
    )
    .with_context("Register-SHM kernel, intra-block distance computations only");

    let mut t = SeriesTable::new(
        "times",
        &["N", "Register-SHM", "Register-SHM-LB", "speedup"],
    );
    for r in &rows {
        t.row(vec![
            Cell::int(r.n as u64),
            Cell::secs(r.regular),
            Cell::secs(r.balanced),
            Cell::x3(r.speedup()),
        ]);
    }
    rep.push_table(t);

    let speedups: Vec<f64> = rows.iter().map(Row::speedup).collect();
    rep.metric(
        "lb_speedup.geomean",
        try_geomean("fig7 LB speedups", &speedups)?,
        "x",
    )?;
    rep.push_note("paper: a 12%-13% improvement (speedup 1.04–1.14 across the sweep)");
    Ok(rep)
}

/// Render the Figure-7 report.
pub fn report(cfg: &DeviceConfig) -> String {
    match build_report(cfg) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("fig7 report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_balancing_wins_by_paper_margin() {
        let cfg = DeviceConfig::titan_x();
        let rows = series(&default_sizes(), &cfg);
        for r in &rows {
            let s = r.speedup();
            assert!(
                (1.03..1.25).contains(&s),
                "LB speedup {s:.3} at N={} outside the paper band",
                r.n
            );
        }
    }

    #[test]
    fn intra_time_scales_linearly_with_n() {
        // The intra phase is O(N·B): doubling N doubles it.
        let cfg = DeviceConfig::titan_x();
        let rows = series(&[614_400, 1_228_800], &cfg);
        let ratio = rows[1].regular / rows[0].regular;
        assert!((1.8..2.2).contains(&ratio), "{ratio}");
    }

    #[test]
    fn report_renders() {
        let rep = report(&DeviceConfig::titan_x());
        assert!(rep.contains("speedup"));
    }
}
