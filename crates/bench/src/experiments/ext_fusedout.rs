//! **Extension: fused Type-II output stage — shape invariants.**
//!
//! A deterministic, CI-sized privatized SDH run through the fused and
//! vectorized interpreter routes, checking the *shape* facts the fused
//! output stage must preserve regardless of machine: every pair bins
//! exactly once, the data-dependent shared-atomic serialization is
//! identical whether histogram scatters are simulated op-by-op or
//! accounted in closed form from the vectorized bucket indices, most
//! useful lane work flows through fused passes, and the packed Figure-3
//! cross-copy reduction actually engages.
//!
//! These are the functional counterparts of the wall-clock
//! `sim_hotpath` floors: they pin *what the fused histogram route
//! computes*, not how fast the host runs it.

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::config::ExecMode;
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{sdh_gpu, PairwisePlan, SdhOutputMode, SdhResult};
use tbs_core::histogram::HistogramSpec;

/// Run the privatized SDH once on the given route.
fn run(n: usize, block: u32, buckets: u32, fused: bool) -> SdhResult {
    let pts = tbs_datagen::uniform_points::<3>(n, tbs_datagen::DEFAULT_BOX, 7);
    let spec = HistogramSpec::new(
        buckets,
        tbs_datagen::box_diagonal(tbs_datagen::DEFAULT_BOX, 3),
    );
    let mut cfg = DeviceConfig::titan_x().with_exec_mode(ExecMode::Sequential);
    if !fused {
        cfg = cfg.with_fused_tile(false);
    }
    let mut dev = Device::new(cfg);
    sdh_gpu(
        &mut dev,
        &pts,
        spec,
        PairwisePlan::register_shm(block),
        SdhOutputMode::Privatized,
    )
    .expect("launch")
}

/// Build the fused-output shape-invariant report.
pub fn build_report(n: usize, block: u32, buckets: u32) -> Result<Report, ReportError> {
    let fused = run(n, block, buckets, true);
    let vec = run(n, block, buckets, false);

    // Bit-identity is the contract; everything below reports *shape*
    // facts on top of it, so first make divergence loud.
    assert_eq!(
        fused.histogram, vec.histogram,
        "fused and vectorized SDH histograms diverged"
    );
    assert_eq!(
        fused.pair_run.tally, vec.pair_run.tally,
        "fused and vectorized SDH pair tallies diverged"
    );

    let mut rep = Report::new(
        "ext_fusedout",
        "Extension — fused Type-II output stage shape invariants",
    )
    .with_context(&format!(
        "functional simulation, privatized SDH, N = {n}, B = {block}, {buckets} buckets, \
         sequential exec"
    ));

    let mut t = SeriesTable::new(
        "routes",
        &[
            "route",
            "dispatches",
            "fused_ops",
            "atomic serial",
            "coverage",
            "memo",
        ],
    );
    for (label, r) in [("fused", &fused), ("vectorized", &vec)] {
        let interp = &r.pair_run.interp;
        let tally = &r.pair_run.tally;
        t.row(vec![
            Cell::text(label),
            Cell::int(interp.dispatches),
            Cell::int(interp.fused_ops),
            Cell::int(tally.shared_atomic_serial),
            Cell::num(
                interp.fused_coverage(tally),
                format!("{:.1}%", interp.fused_coverage(tally) * 100.0),
            ),
            Cell::num(
                interp.memo_hit_rate(),
                format!("{:.1}%", interp.memo_hit_rate() * 100.0),
            ),
        ]);
    }
    rep.push_table(t);

    let pairs = (n as u64 * (n as u64 - 1) / 2) as f64;
    rep.metric(
        "hist_total_over_pairs",
        fused.histogram.total() as f64 / pairs,
        "ratio",
    )?;
    rep.metric(
        "scatter_contention_parity",
        fused.pair_run.tally.shared_atomic_contention()
            / vec.pair_run.tally.shared_atomic_contention(),
        "ratio",
    )?;
    rep.metric(
        "fused_coverage",
        fused.pair_run.interp.fused_coverage(&fused.pair_run.tally),
        "frac",
    )?;
    rep.metric(
        "reduce_fused_ops",
        fused.reduce_run.as_ref().map_or(0, |r| r.interp.fused_ops) as f64,
        "count",
    )?;
    rep.push_note(
        "the fused histogram consumer must bin every half-pair exactly once and\n\
         reproduce the op-by-op route's data-dependent atomic serialization from\n\
         its closed-form scatter accounting; the packed cross-copy reduction must\n\
         engage on the Figure-3 kernel. All checks are deterministic by seed.",
    );
    Ok(rep)
}

/// Render the fused-output report.
pub fn report(n: usize, block: u32, buckets: u32) -> String {
    match build_report(n, block, buckets) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("ext_fusedout report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_invariants_hold_at_ci_size() {
        let rep = build_report(512, 64, 32).expect("report");
        let get = |id: &str| {
            rep.metrics
                .iter()
                .find(|m| m.id == id)
                .unwrap_or_else(|| panic!("missing metric {id}"))
                .value
        };
        assert_eq!(get("hist_total_over_pairs"), 1.0);
        assert_eq!(get("scatter_contention_parity"), 1.0);
        assert!(get("fused_coverage") > 0.5);
        assert!(get("reduce_fused_ops") >= 1.0);
    }
}
