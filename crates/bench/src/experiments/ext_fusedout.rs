//! **Extension: fused Type-II output stage — shape invariants.**
//!
//! A deterministic, CI-sized privatized SDH run through the compiled,
//! fused, and vectorized interpreter routes, checking the *shape* facts
//! the lowered output stage must preserve regardless of machine: every
//! pair bins exactly once, the data-dependent shared-atomic
//! serialization is identical whether histogram scatters are simulated
//! op-by-op or accounted in closed form from the vectorized bucket
//! indices, most useful lane work flows through the lowered passes on
//! each fast route, and the packed Figure-3 cross-copy reduction
//! actually engages.
//!
//! These are the functional counterparts of the wall-clock
//! `sim_hotpath` floors: they pin *what the lowered histogram routes
//! compute*, not how fast the host runs them.

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::config::ExecMode;
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{sdh_gpu, PairwisePlan, SdhOutputMode, SdhResult};
use tbs_core::histogram::HistogramSpec;

/// The interpreter routes the shape invariants compare.
#[derive(Clone, Copy)]
enum Route {
    /// Default route: whole-plan compiled host passes.
    Compiled,
    /// Fused tile passes, compiler off.
    Fused,
    /// Op-by-op vectorized interpreter.
    Vectorized,
}

/// Run the privatized SDH once on the given route.
fn run(n: usize, block: u32, buckets: u32, route: Route) -> SdhResult {
    let pts = tbs_datagen::uniform_points::<3>(n, tbs_datagen::DEFAULT_BOX, 7);
    let spec = HistogramSpec::new(
        buckets,
        tbs_datagen::box_diagonal(tbs_datagen::DEFAULT_BOX, 3),
    );
    let mut cfg = DeviceConfig::titan_x().with_exec_mode(ExecMode::Sequential);
    cfg = match route {
        Route::Compiled => cfg,
        Route::Fused => cfg.with_compiled(false),
        Route::Vectorized => cfg.with_compiled(false).with_fused_tile(false),
    };
    let mut dev = Device::new(cfg);
    sdh_gpu(
        &mut dev,
        &pts,
        spec,
        PairwisePlan::register_shm(block),
        SdhOutputMode::Privatized,
    )
    .expect("launch")
}

/// Build the fused-output shape-invariant report.
pub fn build_report(n: usize, block: u32, buckets: u32) -> Result<Report, ReportError> {
    let compiled = run(n, block, buckets, Route::Compiled);
    let fused = run(n, block, buckets, Route::Fused);
    let vec = run(n, block, buckets, Route::Vectorized);

    // Bit-identity is the contract; everything below reports *shape*
    // facts on top of it, so first make divergence loud.
    assert_eq!(
        fused.histogram, vec.histogram,
        "fused and vectorized SDH histograms diverged"
    );
    assert_eq!(
        compiled.histogram, vec.histogram,
        "compiled and vectorized SDH histograms diverged"
    );
    assert_eq!(
        fused.pair_run.tally, vec.pair_run.tally,
        "fused and vectorized SDH pair tallies diverged"
    );
    assert_eq!(
        compiled.pair_run.tally, vec.pair_run.tally,
        "compiled and vectorized SDH pair tallies diverged"
    );

    let mut rep = Report::new(
        "ext_fusedout",
        "Extension — fused Type-II output stage shape invariants",
    )
    .with_context(&format!(
        "functional simulation, privatized SDH, N = {n}, B = {block}, {buckets} buckets, \
         sequential exec"
    ));

    let mut t = SeriesTable::new(
        "routes",
        &[
            "route",
            "dispatches",
            "lowered_ops",
            "atomic serial",
            "coverage",
            "memo",
        ],
    );
    for (label, r) in [
        ("compiled", &compiled),
        ("fused", &fused),
        ("vectorized", &vec),
    ] {
        let interp = &r.pair_run.interp;
        let tally = &r.pair_run.tally;
        // Each fast route's own lowering; the vectorized row pins zero.
        let lowered_ops = interp.fused_ops + interp.compiled_ops;
        let coverage = interp.fused_coverage(tally) + interp.compiled_coverage(tally);
        t.row(vec![
            Cell::text(label),
            Cell::int(interp.dispatches),
            Cell::int(lowered_ops),
            Cell::int(tally.shared_atomic_serial),
            Cell::num(coverage, format!("{:.1}%", coverage * 100.0)),
            Cell::num(
                interp.memo_hit_rate(),
                format!("{:.1}%", interp.memo_hit_rate() * 100.0),
            ),
        ]);
    }
    rep.push_table(t);

    let pairs = (n as u64 * (n as u64 - 1) / 2) as f64;
    rep.metric(
        "hist_total_over_pairs",
        fused.histogram.total() as f64 / pairs,
        "ratio",
    )?;
    rep.metric(
        "scatter_contention_parity",
        fused.pair_run.tally.shared_atomic_contention()
            / vec.pair_run.tally.shared_atomic_contention(),
        "ratio",
    )?;
    rep.metric(
        "fused_coverage",
        fused.pair_run.interp.fused_coverage(&fused.pair_run.tally),
        "frac",
    )?;
    rep.metric(
        "compiled_coverage",
        compiled
            .pair_run
            .interp
            .compiled_coverage(&compiled.pair_run.tally),
        "frac",
    )?;
    rep.metric(
        "reduce_fused_ops",
        fused.reduce_run.as_ref().map_or(0, |r| r.interp.fused_ops) as f64,
        "count",
    )?;
    rep.metric(
        "reduce_compiled_ops",
        compiled
            .reduce_run
            .as_ref()
            .map_or(0, |r| r.interp.compiled_ops) as f64,
        "count",
    )?;
    rep.push_note(
        "the lowered histogram sinks must bin every half-pair exactly once and\n\
         reproduce the op-by-op route's data-dependent atomic serialization from\n\
         their closed-form scatter accounting; the packed cross-copy reduction\n\
         must engage on the Figure-3 kernel on both fast routes. All checks are\n\
         deterministic by seed.",
    );
    Ok(rep)
}

/// Render the fused-output report.
pub fn report(n: usize, block: u32, buckets: u32) -> String {
    match build_report(n, block, buckets) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("ext_fusedout report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_invariants_hold_at_ci_size() {
        let rep = build_report(512, 64, 32).expect("report");
        let get = |id: &str| {
            rep.metrics
                .iter()
                .find(|m| m.id == id)
                .unwrap_or_else(|| panic!("missing metric {id}"))
                .value
        };
        assert_eq!(get("hist_total_over_pairs"), 1.0);
        assert_eq!(get("scatter_contention_parity"), 1.0);
        assert!(get("fused_coverage") > 0.5);
        assert!(get("compiled_coverage") > 0.5);
        assert!(get("reduce_fused_ops") >= 1.0);
        assert!(get("reduce_compiled_ops") >= 1.0);
    }
}
