//! **Extension — Landy–Szalay estimator** (functional): the
//! cosmology-grade DD/DR/RR + ξ(r) pipeline the spatial front end
//! exists for, at CI size, with deterministic seeded catalogs.
//!
//! Three checks:
//!
//! * **mass conservation** — with r_max stretched past the box diagonal
//!   every pair lands in a finite bin, so the finalized DD/DR/RR
//!   histograms must carry *exactly* nd(nd−1)/2, nd·nr and nr(nr−1)/2
//!   pairs. These are `range(1,1)` gate bands: any lost or doubled pair
//!   anywhere in the gridded executor shifts them.
//! * **clustered data clusters** — ξ(r) in the first bin of a
//!   Gaussian-blob catalog against a uniform random catalog must be
//!   strongly positive.
//! * **uniform data doesn't** — ξ(r) of a uniform catalog stays near
//!   zero in the shot-noise-safe outer bins.
//!
//! The control and random catalogs are *Poisson* uniform
//! ([`tbs_datagen::uniform_points`]), not the jittered-lattice
//! [`tbs_datagen::periodic_uniform_points`]: at this CI size the lattice's
//! stratification cell (`BOX/⌊nd^⅓⌋ ≈ 11`) exceeds `R_MAX`, so a
//! stratified catalog is genuinely anti-correlated across *every*
//! bin (ξ down to −6.5 measured) and "near zero" would be the wrong
//! expectation. `ls_estimator` keeps the stratified randoms at
//! N ≥ 10⁶ where the cell shrinks far below the correlation scales.

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{landy_szalay, ls_pair_counts, PairwisePlan};
use tbs_core::grid::{GridOptions, RadialBins};
use tbs_datagen::{box_diagonal, gaussian_blobs, uniform_points};

pub const BOX: f32 = 100.0;
pub const BLOCK: u32 = 256;
pub const R_MAX: f32 = 10.0;

/// Blob layout for the clustered catalog: four well-separated centers,
/// σ = 3 — tight against the 10-unit correlation scale.
pub const CENTERS: [[f32; 3]; 4] = [
    [20.0, 20.0, 20.0],
    [70.0, 30.0, 60.0],
    [40.0, 80.0, 30.0],
    [80.0, 70.0, 80.0],
];
pub const SIGMA: f32 = 3.0;

fn device() -> Device {
    Device::new(DeviceConfig::titan_x().with_compiled(true))
}

fn xi_of(
    data: &tbs_core::point::SoaPoints<3>,
    rand: &tbs_core::point::SoaPoints<3>,
    bins: RadialBins,
) -> (tbs_apps::LsPairCounts, Vec<f64>) {
    let mut dev = device();
    let counts = ls_pair_counts(
        &mut dev,
        data,
        rand,
        bins,
        PairwisePlan::register_shm(BLOCK),
        &GridOptions::default(),
    )
    .expect("LS pipeline");
    let xi = landy_szalay(&counts);
    (counts, xi)
}

/// Build the LS functional report: `nd` data points (blobs + a uniform
/// control), `nr` randoms, `bins` radial bins to `R_MAX`.
pub fn build_report(nd: usize, nr: usize, bins: u32) -> Result<Report, ReportError> {
    let blobs = gaussian_blobs::<3>(nd, BOX, &CENTERS, &[SIGMA; 4], 101);
    let uniform = uniform_points::<3>(nd, BOX, 202);
    let rand = uniform_points::<3>(nr, BOX, 303);

    // Mass conservation: stretch r_max past the diagonal so no pair can
    // reach the overflow bucket, then demand exact pair-mass identities.
    let wide = RadialBins::new(bins, box_diagonal(BOX, 3) * 1.001);
    let (mass, _) = xi_of(&blobs, &rand, wide);
    let nd_u = nd as u64;
    let nr_u = nr as u64;
    let dd_expected = nd_u * (nd_u - 1) / 2;
    let dr_expected = nd_u * nr_u;
    let rr_expected = nr_u * (nr_u - 1) / 2;

    // Clustering shape: blobs must correlate at short range, the
    // uniform control must not (outside the shot-noise-dominated inner
    // bins).
    let rb = RadialBins::new(bins, R_MAX);
    let (counts, xi_blobs) = xi_of(&blobs, &rand, rb);
    let (_, xi_uniform) = xi_of(&uniform, &rand, rb);
    let tail_absmax = xi_uniform
        .iter()
        .skip(3)
        .filter(|x| x.is_finite())
        .fold(0.0f64, |m, x| m.max(x.abs()));

    let mut rep =
        Report::new("ext_ls", "Extension — Landy–Szalay 2-PCF estimator").with_context(&format!(
            "DD/DR/RR via the gridded executor, nd={nd} (4 Gaussian blobs σ={SIGMA} + uniform \
             control), nr={nr} randoms, {bins} bins to r={R_MAX}, {BOX}^3 box, register_shm \
             plan, block={BLOCK}, compiled route"
        ));
    let mut t = SeriesTable::new(
        "bins",
        &["r_hi", "DD", "DR", "RR", "xi_blobs", "xi_uniform"],
    );
    let width = rb.bin_width();
    for i in 0..bins as usize {
        t.row(vec![
            Cell::num(
                (i as f64 + 1.0) * width as f64,
                format!("{:.2}", (i + 1) as f32 * width),
            ),
            Cell::int(counts.dd.counts()[i]),
            Cell::int(counts.dr.counts()[i]),
            Cell::int(counts.rr.counts()[i]),
            Cell::num(xi_blobs[i], format!("{:+.3}", xi_blobs[i])),
            Cell::num(xi_uniform[i], format!("{:+.3}", xi_uniform[i])),
        ]);
    }
    rep.push_table(t);
    rep.metric(
        "dd_mass_over_expected",
        mass.dd.total() as f64 / dd_expected as f64,
        "frac",
    )?;
    rep.metric(
        "dr_mass_over_expected",
        mass.dr.total() as f64 / dr_expected as f64,
        "frac",
    )?;
    rep.metric(
        "rr_mass_over_expected",
        mass.rr.total() as f64 / rr_expected as f64,
        "frac",
    )?;
    rep.metric("xi_clustered_peak", xi_blobs[0], "xi")?;
    rep.metric("xi_uniform_tail_absmax", tail_absmax, "xi")?;
    rep.push_note(
        "mass metrics use r_max > box diagonal, where the finalized DD/DR/RR\n\
         histograms must hold exactly nd(nd-1)/2, nd*nr and nr(nr-1)/2 pairs —\n\
         a lost or doubled pair anywhere in the gridded executor breaks the\n\
         range(1,1) band. xi_clustered_peak is the first-bin Landy-Szalay\n\
         amplitude of the blob catalog (strongly positive); the uniform\n\
         control's outer-bin |xi| must stay near zero.",
    );
    Ok(rep)
}
