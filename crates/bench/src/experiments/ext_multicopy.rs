//! **Extension: multiple private copies per block** — reproducing the
//! paper's §IV-C aside: *"We tested more private copies per block and
//! found that it does not bring overall performance advantage (data not
//! shown)."*
//!
//! Mechanism: warp `w` updates private copy `w mod K`, cutting
//! same-address atomic contention by up to the copy count — but each
//! copy costs shared memory (occupancy) and widens the end-of-block
//! merge. This functional study measures both sides.

use crate::report::{Cell, Report, ReportError, SeriesTable};
use gpu_sim::{Device, DeviceConfig};
use tbs_core::histogram::HistogramSpec;
use tbs_core::kernels::{pair_launch, IntraMode, PairScope, RegisterShmKernel};
use tbs_core::output::MultiCopyHistogramAction;
use tbs_core::{Euclidean, Histogram};

/// One copy-count sample.
#[derive(Debug, Clone)]
pub struct Row {
    pub copies: u32,
    pub contention: f64,
    pub occupancy: f64,
    pub seconds: f64,
}

/// Sweep private-copy counts on a functional SDH. A copy count whose
/// launch faults is reported and skipped; the rest of the sweep runs.
pub fn series(n: usize, buckets: u32, block: u32, copy_counts: &[u32]) -> Vec<Row> {
    let pts = tbs_datagen::uniform_points::<3>(n, tbs_datagen::DEFAULT_BOX, 5);
    let spec = HistogramSpec::new(
        buckets,
        tbs_datagen::box_diagonal(tbs_datagen::DEFAULT_BOX, 3),
    );
    let mut reference: Option<Histogram> = None;
    copy_counts
        .iter()
        .filter_map(|&copies| {
            let mut dev = Device::new(DeviceConfig::titan_x());
            let input = pts.upload(&mut dev);
            let lc = pair_launch(input.n, block);
            let private = dev.alloc_u32_zeroed((lc.grid_dim * buckets) as usize);
            let k = RegisterShmKernel::new(
                input,
                Euclidean,
                MultiCopyHistogramAction {
                    spec,
                    private,
                    copies,
                },
                block,
                PairScope::HalfPairs,
                IntraMode::Regular,
            );
            let run = match dev.try_launch(&k, lc) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("ext_multicopy: skipping copies = {copies}: {e}");
                    return None;
                }
            };
            // Correctness: merge the per-block private copies and compare
            // against the single-copy result.
            let vals = dev.u32_slice(private);
            let mut counts = vec![0u64; buckets as usize];
            for (i, &v) in vals.iter().enumerate() {
                counts[i % buckets as usize] += v as u64;
            }
            let merged = Histogram::from_counts(counts);
            match &reference {
                None => reference = Some(merged),
                Some(r) => assert_eq!(&merged, r, "copies={copies} changed the histogram"),
            }
            Some(Row {
                copies,
                contention: run.tally.shared_atomic_contention(),
                occupancy: run.occupancy.occupancy,
                seconds: run.timing.seconds,
            })
        })
        .collect()
}

/// Build the structured multi-copy report for a contended
/// (small-histogram) and an occupancy-bound (large-histogram)
/// configuration.
pub fn build_report(n: usize, block: u32) -> Result<Report, ReportError> {
    let mut rep = Report::new(
        "ext_multicopy",
        "Extension — multiple private histogram copies per block",
    )
    .with_context(&format!("functional simulation, N = {n}, B = {block}"));
    let mut t = SeriesTable::new(
        "sweep",
        &["config", "copies", "contention", "occupancy", "sim time"],
    );
    // 4 copies × 16 KB would overflow the 48 KB block limit at 4096
    // buckets — the shared-memory ceiling is itself part of the paper's
    // point, so the realistic sweep stops at 2.
    let mut contended_rows = Vec::new();
    for (label, buckets, copy_counts) in [
        ("contended: 32 buckets", 32u32, &[1u32, 2, 4][..]),
        ("realistic: 4096 buckets", 4096, &[1, 2][..]),
    ] {
        let rows = series(n, buckets, block, copy_counts);
        for r in &rows {
            t.row(vec![
                Cell::text(label),
                Cell::int(r.copies as u64),
                Cell::num(r.contention, format!("{:.2}x", r.contention)),
                Cell::pct(r.occupancy),
                Cell::secs(r.seconds),
            ]);
        }
        if buckets == 32 {
            contended_rows = rows;
        }
    }
    rep.push_table(t);

    let at = |copies: u32| -> Result<f64, ReportError> {
        contended_rows
            .iter()
            .find(|r| r.copies == copies)
            .map(|r| r.contention)
            .ok_or_else(|| ReportError::EmptySeries {
                what: format!("ext_multicopy copies = {copies} row"),
            })
    };
    rep.metric("contention_ratio.copies1_over_4", at(1)? / at(4)?, "ratio")?;
    rep.push_note(
        "paper (§IV-C): \"more private copies per block ... does not bring overall\n\
         performance advantage\" — extra copies trade contention against occupancy\n\
         and a wider reduction; at realistic histogram sizes the trade nets ~zero.",
    );
    Ok(rep)
}

/// Render the multi-copy report.
pub fn report(n: usize, block: u32) -> String {
    match build_report(n, block) {
        Ok(rep) => rep.render(),
        Err(e) => panic!("ext_multicopy report failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_copies_cut_contention() {
        let rows = series(1024, 32, 128, &[1, 4]);
        assert!(
            rows[1].contention < rows[0].contention * 0.75,
            "4 copies: {:.2} vs 1 copy: {:.2}",
            rows[1].contention,
            rows[0].contention
        );
    }

    #[test]
    fn extra_copies_cost_occupancy_at_realistic_sizes() {
        // Occupancy is a static function of the kernel's resources; check
        // it at a paper-scale grid (functional test sizes are grid-limited
        // and would mask the shared-memory ceiling).
        use tbs_core::output::PairAction;
        let cfg = DeviceConfig::titan_x();
        let spec = HistogramSpec::new(4096, tbs_datagen::box_diagonal(tbs_datagen::DEFAULT_BOX, 3));
        let occ = |copies: u32| {
            let mut dev = Device::new(cfg.clone());
            let private = dev.alloc_u32_zeroed(4096);
            let action = MultiCopyHistogramAction {
                spec,
                private,
                copies,
            };
            // Tile (3 KB at B=256, D=3) + copies × 16 KB.
            let shm = 256 * 4 * 3 + action.shared_bytes(256);
            gpu_sim::occupancy::occupancy(&cfg, 10_000, 256, 32, shm).occupancy
        };
        let (one, two) = (occ(1), occ(2));
        assert!(
            two < one,
            "2×16 KB copies must reduce occupancy: {two} vs {one}"
        );
    }

    #[test]
    fn no_overall_advantage_at_realistic_sizes() {
        // The paper's claim, as a measured fact.
        let rows = series(2048, 4096, 256, &[1, 2]);
        assert!(
            rows[1].seconds > rows[0].seconds * 0.9,
            "multi-copy {} must not beat single-copy {} by >10%",
            rows[1].seconds,
            rows[0].seconds
        );
    }

    #[test]
    fn four_realistic_copies_overflow_shared_memory() {
        // 4 × 16 KB private copies + the input tile exceed the 48 KB
        // per-block limit — the hardware ceiling that motivates keeping
        // one copy per block.
        let pts = tbs_datagen::uniform_points::<3>(512, tbs_datagen::DEFAULT_BOX, 5);
        let spec = HistogramSpec::new(4096, tbs_datagen::box_diagonal(tbs_datagen::DEFAULT_BOX, 3));
        let mut dev = Device::new(DeviceConfig::titan_x());
        let input = pts.upload(&mut dev);
        let lc = pair_launch(input.n, 256);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * 4096) as usize);
        let k = RegisterShmKernel::new(
            input,
            Euclidean,
            MultiCopyHistogramAction {
                spec,
                private,
                copies: 4,
            },
            256,
            PairScope::HalfPairs,
            IntraMode::Regular,
        );
        assert!(matches!(
            dev.try_launch(&k, lc),
            Err(gpu_sim::SimError::SharedMemOverflow { .. })
        ));
    }
}
