//! **Query-service SLOs** — wall-clock behavior of the `tbs-serve`
//! batched/sharded/concurrent serving layer (extension study; the paper
//! stops at one-shot kernels, its "millions of users" motivation is
//! exactly this serving scenario).
//!
//! Like `hotpath`, this measures *this machine*, not the modeled GPU.
//! Five SLO legs:
//!
//! * **Coalescing throughput**: k batchable queries (a 2-PCF radius
//!   ladder plus dense count-within probes) against one
//!   dataset, submitted one-at-a-time (k sharded sweeps) vs as one
//!   admission batch (one sharded sweep feeding every sink). The
//!   batched answers are asserted bit-identical to the sequential ones,
//!   then `batched_vs_sequential.nN = T_seq / T_batch` — the service's
//!   headline multiplier (k sweeps of work collapse into ~1).
//! * **SDH-heavy coalescing**: the same leg on a histogram-dominated
//!   mix ([`sdh_queries`]) — mostly clients asking the *popular* SDH
//!   geometry, plus a custom-geometry client and count probes. A
//!   histogram sink replays the whole bucket-scatter per pair, so
//!   distinct-spec SDH sinks cannot amortize the way count sinks do;
//!   the multiplier here certifies the batcher's identical-spec sink
//!   dedup plus the compiled multi-consumer sweep
//!   (`batched_vs_sequential_sdh.nN`).
//! * **Gridded coalescing**: a burst of gridded count-within clients
//!   ([`gridded_queries`]) — one at a time each pays its own packed
//!   sweep and covering-grid build; as one batch they collapse into a
//!   single packed multi-radius sweep over one shared covering catalog
//!   (`batched_vs_sequential_gridded.nN`).
//! * **Latency distribution**: m single queries at a CI-sized dataset;
//!   p50/p99 wall-clock per round-trip (admission → merged reply).
//! * **Cache effectiveness**: the shard-upload cache hit rate across
//!   the throughput leg — repeat queries must not re-upload.
//!
//! The `serve_baseline` bin prints it (default N = 16384, `--full` adds
//! the N = 65536 acceptance leg); the perf gate pins the N = 16384
//! multipliers, a p99 ceiling, and a hit-rate floor (group `host`).

use std::time::Instant;

use crate::report::{Cell, Report, ReportError, SeriesTable};
use tbs_apps::serve::{Query, QueryResult, ServeConfig, Server, ServerStats};
use tbs_datagen::uniform_points;

pub const BOX: f32 = 100.0;
pub const SEED: u64 = 17;
/// Workers (= shards) the measured server runs.
pub const WORKERS: usize = 2;
/// Single-query round-trips in the latency leg.
pub const LATENCY_PROBES: usize = 40;

/// The k = 12 batchable queries of the throughput leg: a 2-PCF radius
/// ladder (ten `PairCounts` clients probing different separation bins —
/// the paper's "millions of users each asking their own r" scenario)
/// plus two dense count-within probes: 16 sinks total, all coalescible
/// into one multi-consumer sweep. Histogram queries batch too (the
/// differential and service tests pin their bit-identity), but their
/// per-sink scatter accounting is itself sweep-sized, so the
/// throughput SLO measures the count-shaped mix where coalescing pays.
pub fn ratio_queries() -> Vec<Query> {
    vec![
        Query::PairCounts {
            radii: vec![2.0, 4.0],
        },
        Query::PairCounts {
            radii: vec![6.0, 9.0],
        },
        Query::PairCounts {
            radii: vec![12.0, 16.0],
        },
        Query::PairCounts {
            radii: vec![21.0, 27.0],
        },
        Query::PairCounts { radii: vec![25.0] },
        Query::PairCounts { radii: vec![34.0] },
        Query::PairCounts { radii: vec![42.0] },
        Query::PairCounts { radii: vec![55.0] },
        Query::PairCounts { radii: vec![70.0] },
        Query::PairCounts { radii: vec![85.0] },
        Query::CountWithin {
            radius: 8.0,
            gridded: false,
        },
        Query::CountWithin {
            radius: 30.0,
            gridded: false,
        },
    ]
}

/// The k = 12 queries of the SDH-heavy throughput leg: eight clients
/// asking the popular 256-bucket full-diagonal histogram (the paper's
/// fan-in shape — many users, one canonical geometry), two asking a
/// custom half-resolution variant, and two count probes riding along.
/// The batcher dedups the popular spec onto one histogram sink, so the
/// coalesced sweep feeds 2 histogram + 2 count sinks instead of
/// replaying ten sweep-sized bucket scatters.
pub fn sdh_queries() -> Vec<Query> {
    let popular_width = tbs_datagen::box_diagonal(BOX, 3) / 256.0;
    let mut queries = vec![
        Query::Sdh {
            buckets: 256,
            width: popular_width,
        };
        8
    ];
    queries.extend([
        Query::Sdh {
            buckets: 128,
            width: popular_width * 2.0,
        },
        Query::Sdh {
            buckets: 128,
            width: popular_width * 2.0,
        },
        Query::PairCounts {
            radii: vec![12.0, 30.0],
        },
        Query::CountWithin {
            radius: 50.0,
            gridded: false,
        },
    ]);
    queries
}

/// The k = 12 gridded count-within clients of the gridded coalescing
/// leg: a radius ladder in the grid's regime (r small against the box),
/// every query routed through the uniform grid. Submitted one at a
/// time, each pays its own packed sweep — and each new radius its own
/// covering-grid build; as one batch they coalesce into a single packed
/// multi-radius sweep over one shared covering catalog.
pub fn gridded_queries() -> Vec<Query> {
    (0..12)
        .map(|i| Query::CountWithin {
            radius: 2.0 + i as f32 * 0.5,
            gridded: true,
        })
        .collect()
}

/// One dataset size's coalescing measurement.
#[derive(Debug, Clone)]
pub struct ServeSample {
    pub n: usize,
    /// Queries coalesced (k).
    pub k: usize,
    /// Sinks the coalesced sweep fed.
    pub sinks: usize,
    /// Wall-clock seconds for k one-at-a-time submissions.
    pub sequential_s: f64,
    /// Wall-clock seconds for the same k queries as one batch.
    pub batched_s: f64,
    /// Service counters after both legs.
    pub stats: ServerStats,
}

impl ServeSample {
    /// The coalescing multiplier: k sweeps of work over ~1.
    pub fn batched_vs_sequential(&self) -> f64 {
        self.sequential_s / self.batched_s
    }
}

/// Run the throughput leg at dataset size `n` on the count-shaped
/// [`ratio_queries`] mix: sequential first (its opening query pays the
/// one shard upload), then the coalesced batch, asserting the answers
/// are bit-identical.
pub fn measure_ratio(n: usize) -> ServeSample {
    measure_ratio_queries(n, ratio_queries())
}

/// The same throughput leg on the SDH-heavy [`sdh_queries`] mix.
pub fn measure_ratio_sdh(n: usize) -> ServeSample {
    measure_ratio_queries(n, sdh_queries())
}

/// The same throughput leg on the gridded [`gridded_queries`] mix: one
/// packed multi-radius sweep over a shared covering catalog vs twelve
/// solo gridded round-trips.
pub fn measure_ratio_gridded(n: usize) -> ServeSample {
    let queries = gridded_queries();
    // Gridded queries coalesce outside the dense SinkPlan: the shared
    // sweep feeds one count sink per query radius.
    let sinks = queries.len();
    measure_ratio_with_sinks(n, queries, sinks)
}

fn measure_ratio_queries(n: usize, queries: Vec<Query>) -> ServeSample {
    // Sinks of the coalesced sweep as the batcher actually plans it
    // (histogram-sink dedup included).
    let sinks = tbs_apps::serve::planned_sinks(&queries);
    measure_ratio_with_sinks(n, queries, sinks)
}

fn measure_ratio_with_sinks(n: usize, queries: Vec<Query>, sinks: usize) -> ServeSample {
    let pts = uniform_points::<3>(n, BOX, SEED);
    let cfg = ServeConfig::default().with_workers(WORKERS);
    Server::run(cfg, |h| {
        h.register_dataset("d", pts.clone()).expect("register");
        let t0 = Instant::now();
        let sequential: Vec<QueryResult> = queries
            .iter()
            .map(|q| h.submit("d", q.clone()).expect("sequential query"))
            .collect();
        let sequential_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let batched = h.submit_batch("d", queries.clone()).expect("batch");
        let batched_s = t1.elapsed().as_secs_f64();
        assert_eq!(
            sequential, batched,
            "coalesced answers must be bit-identical to sequential ones (N = {n})"
        );
        let stats = h.stats().expect("stats");
        ServeSample {
            n,
            k: queries.len(),
            sinks,
            sequential_s,
            batched_s,
            stats,
        }
    })
}

/// The latency leg's percentile summary (milliseconds).
#[derive(Debug, Clone)]
pub struct LatencySample {
    pub n: usize,
    pub probes: usize,
    pub p50_ms: f64,
    pub p99_ms: f64,
}

/// Round-trip latency of `LATENCY_PROBES` single queries at dataset
/// size `n` (radii cycle so the distance kernel, not one lucky count,
/// is what's timed; the first probe's shard upload is included — cold
/// starts are part of the SLO).
pub fn measure_latency(n: usize) -> LatencySample {
    let pts = uniform_points::<3>(n, BOX, SEED + 1);
    let radii = [3.0f32, 7.0, 12.0, 18.0, 25.0, 33.0, 42.0, 55.0];
    let cfg = ServeConfig::default().with_workers(WORKERS);
    Server::run(cfg, |h| {
        h.register_dataset("ci", pts.clone()).expect("register");
        let mut lat_ms: Vec<f64> = (0..LATENCY_PROBES)
            .map(|i| {
                let q = Query::PairCounts {
                    radii: vec![radii[i % radii.len()]],
                };
                let t = Instant::now();
                h.submit("ci", q).expect("latency probe");
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        lat_ms.sort_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| lat_ms[((lat_ms.len() as f64 * q).ceil() as usize).max(1) - 1];
        LatencySample {
            n,
            probes: LATENCY_PROBES,
            p50_ms: pick(0.50),
            p99_ms: pick(0.99),
        }
    })
}

/// Build the `ext_serve` report: one count-mix throughput row per entry
/// of `ratio_sizes`, one SDH-heavy row per entry of `sdh_sizes`, one
/// gridded coalescing row at the smallest ratio size, one latency
/// summary at `latency_n`.
pub fn build_report(
    ratio_sizes: &[usize],
    sdh_sizes: &[usize],
    latency_n: usize,
) -> Result<Report, ReportError> {
    let samples: Vec<ServeSample> = ratio_sizes.iter().map(|&n| measure_ratio(n)).collect();
    let sdh: Vec<ServeSample> = sdh_sizes.iter().map(|&n| measure_ratio_sdh(n)).collect();
    let gridded = [measure_ratio_gridded(ratio_sizes[0])];
    let latency = measure_latency(latency_n);
    build_report_from(&samples, &sdh, &gridded, &latency)
}

/// Assemble the report from already-measured legs (the `serve_baseline`
/// bin measures once and reuses the samples for its own gates).
pub fn build_report_from(
    samples: &[ServeSample],
    sdh: &[ServeSample],
    gridded: &[ServeSample],
    latency: &LatencySample,
) -> Result<Report, ReportError> {
    let latency_n = latency.n;
    let mut rep = Report::new(
        "ext_serve",
        "Query service: coalescing, latency, cache SLOs",
    )
    .with_context(&format!(
        "tbs-serve, {WORKERS} workers/shards, k = 12 batchable queries (16 sinks) \
             plus the k = 12 SDH-heavy mix (5 deduped sinks), \
             {LATENCY_PROBES} latency probes at N = {latency_n}, uniform 100^3 box"
    ));

    let columns = [
        "N",
        "k",
        "sinks",
        "sequential",
        "batched",
        "batched vs sequential",
        "cache hit rate",
    ];
    let coalescing_row = |s: &ServeSample| {
        vec![
            Cell::int(s.n as u64),
            Cell::int(s.k as u64),
            Cell::int(s.sinks as u64),
            Cell::secs(s.sequential_s),
            Cell::secs(s.batched_s),
            Cell::x(s.batched_vs_sequential()),
            Cell::pct(s.stats.cache_hit_rate()),
        ]
    };
    let mut t = SeriesTable::new("coalescing", &columns);
    for s in samples {
        t.row(coalescing_row(s));
    }
    rep.push_table(t);

    let mut st = SeriesTable::new("coalescing (SDH-heavy)", &columns);
    for s in sdh {
        st.row(coalescing_row(s));
    }
    rep.push_table(st);

    let mut gt = SeriesTable::new("coalescing (gridded)", &columns);
    for s in gridded {
        gt.row(coalescing_row(s));
    }
    rep.push_table(gt);

    let mut lt = SeriesTable::new("latency", &["N", "probes", "p50", "p99"]);
    lt.row(vec![
        Cell::int(latency.n as u64),
        Cell::int(latency.probes as u64),
        Cell::num(latency.p50_ms, format!("{:.1} ms", latency.p50_ms)),
        Cell::num(latency.p99_ms, format!("{:.1} ms", latency.p99_ms)),
    ]);
    rep.push_table(lt);

    for s in samples {
        rep.metric(
            &format!("batched_vs_sequential.n{}", s.n),
            s.batched_vs_sequential(),
            "x",
        )?;
    }
    for s in sdh {
        rep.metric(
            &format!("batched_vs_sequential_sdh.n{}", s.n),
            s.batched_vs_sequential(),
            "x",
        )?;
    }
    for s in gridded {
        rep.metric(
            &format!("batched_vs_sequential_gridded.n{}", s.n),
            s.batched_vs_sequential(),
            "x",
        )?;
    }
    // The cache SLO comes from the smallest (gate) size so the metric
    // exists on both the reduced and the --full sweep.
    let gate = &samples[0];
    rep.metric("cache_hit_rate", gate.stats.cache_hit_rate(), "ratio")?;
    rep.metric("coalesced_queries", gate.stats.coalesced_queries as f64, "")?;
    rep.metric(
        &format!("p50_latency_ms.n{latency_n}"),
        latency.p50_ms,
        "ms",
    )?;
    rep.metric(
        &format!("p99_latency_ms.n{latency_n}"),
        latency.p99_ms,
        "ms",
    )?;

    rep.push_note(
        "Coalescing folds k same-dataset sweeps into one multi-consumer sweep \
         (bit-identical answers asserted in-run); the multiplier approaches k as \
         sink cost amortizes against the shared distance evaluation. Histogram \
         sinks replay their bucket scatter per pair, so the SDH-heavy leg's \
         multiplier comes from identical-spec sink dedup (the popular geometry \
         collapses onto one sink) on top of the shared sweep. The gridded leg \
         coalesces a burst of gridded count-withins into one packed multi-radius \
         sweep over a shared covering catalog (sequential submissions each pay \
         their own sweep and covering-grid build). The hit-rate SLO \
         certifies repeat queries never re-upload shards; p99 includes the cold \
         first probe by design.",
    );
    Ok(rep)
}
