//! Host-throughput baseline for the interpreter fast paths.
//!
//! Measures the three interpreter routes — scalar reference, vectorized
//! op-by-op, and fused tile passes — via `experiments::hotpath` (which
//! asserts all routes are bit-identical), prints the structured report,
//! and records `BENCH_sim_hotpath.json` at the repository root.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tbs-bench --bin hotpath_baseline            # N = 16384, 65536
//! cargo run --release -p tbs-bench --bin hotpath_baseline -- --full  # adds N = 131072, 262144
//! ```
//!
//! Acceptance gates, both at N = 65536 in `Sequential` mode: the
//! vectorized route must be ≥2× the scalar reference, and the fused
//! route must be ≥2× the vectorized route. Pass `--json DIR` (or set
//! `TBS_REPORT_DIR`) to also mirror the schema-versioned
//! `sim_hotpath.json` report.

use tbs_bench::experiments::hotpath::{self, Sample};
use tbs_bench::report;
use tbs_json::Json;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut sizes = vec![16_384usize, 65_536];
    if full {
        // 262144 exceeds SCALAR_CEILING: vectorized + fused only.
        sizes.extend([131_072, 262_144]);
    }

    let samples: Vec<Sample> = sizes.iter().map(|&n| hotpath::measure(n)).collect();
    report::emit_result(hotpath::build_report_from(&samples));

    // The legacy flat benchmark record at the repository root, now
    // emitted through tbs-json (same fields as before, plus the fused
    // route and its interpreter statistics).
    let entries: Vec<Json> = samples
        .iter()
        .map(|s| {
            let mut e = Json::obj().with("n", s.n).with("pair_count", s.pair_count);
            if let Some(v) = s.scalar_s {
                e = e.with("scalar_reference_s", v);
            }
            e = e.with("vectorized_s", s.fast_s).with("fused_s", s.fused_s);
            if let Some(v) = s.speedup() {
                e = e.with("speedup", v);
            }
            if let Some(v) = s.fused_speedup() {
                e = e.with("fused_speedup", v);
            }
            e.with("fused_vs_vectorized", s.fused_vs_vectorized())
                .with("dispatches", s.dispatches)
                .with("fused_ops", s.fused_ops)
                .with("fused_coverage", s.fused_coverage)
                .with("memo_hit_rate", s.memo_hit_rate)
                .with("lane_ops", s.lane_ops)
                .with("lane_ops_per_s", s.lane_ops_per_s())
                .with("sim_cycles", s.sim_cycles)
                .with("sim_cycles_per_s", s.sim_cycles_per_s())
        })
        .collect();
    let doc = Json::obj()
        .with("benchmark", "sim_hotpath")
        .with(
            "workload",
            "fig2 2-PCF, register_shm plan, block=1024, r=25, 100^3 box",
        )
        .with("exec_mode", "sequential")
        .with("bit_identical", true)
        .with("sizes", Json::Arr(entries));

    // crates/bench/ -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_hotpath.json");
    std::fs::write(path, doc.render().expect("render hotpath JSON"))
        .expect("write BENCH_sim_hotpath.json");
    eprintln!("wrote {path}");

    let gate = samples.iter().find(|s| s.n == 65_536).expect("N=65536 run");
    let speedup = gate.speedup().expect("scalar route runs at N=65536");
    assert!(
        speedup >= 2.0,
        "acceptance gate failed: vectorized {speedup:.2}x < 2x over scalar at N=65536"
    );
    let fusion = gate.fused_vs_vectorized();
    assert!(
        fusion >= 2.0,
        "acceptance gate failed: fused {fusion:.2}x < 2x over vectorized at N=65536"
    );
    eprintln!(
        "acceptance gates passed at N=65536: vectorized {speedup:.2}x >= 2x over scalar, \
         fused {fusion:.2}x >= 2x over vectorized"
    );
}
