//! Host-throughput baseline for the interpreter fast paths.
//!
//! Runs the fig2-style 2-PCF workload through the simulator twice per
//! problem size — once with `scalar_reference` (the retained per-lane
//! implementation) and once with the vectorized fast paths — asserts the
//! two runs are bit-identical (pair count, full `AccessTally`, simulated
//! timing), and records wall-clock times and throughput to
//! `BENCH_sim_hotpath.json` at the repository root.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tbs-bench --bin hotpath_baseline            # N = 16384, 65536
//! cargo run --release -p tbs-bench --bin hotpath_baseline -- --full  # adds N = 131072
//! ```
//!
//! The acceptance gate for the vectorized interpreter is a ≥2× speedup
//! at N = 65536 in `Sequential` mode.

use std::time::Instant;

use gpu_sim::config::ExecMode;
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{pcf_gpu, PairwisePlan, PcfResult};
use tbs_datagen::uniform_points;

const RADIUS: f32 = 25.0;
const BOX: f32 = 100.0;
const SEED: u64 = 11;
const BLOCK: u32 = 1024;

struct SizeReport {
    n: usize,
    count: u64,
    scalar_s: f64,
    fast_s: f64,
    lane_ops: u64,
    sim_cycles: f64,
}

fn run_once(n: usize, scalar_reference: bool) -> (f64, PcfResult) {
    let pts = uniform_points::<3>(n, BOX, SEED);
    let cfg = DeviceConfig::titan_x()
        .with_exec_mode(ExecMode::Sequential)
        .with_scalar_reference(scalar_reference);
    let mut dev = Device::new(cfg);
    let t = Instant::now();
    let r = pcf_gpu(&mut dev, &pts, RADIUS, PairwisePlan::register_shm(BLOCK)).expect("launch");
    (t.elapsed().as_secs_f64(), r)
}

fn measure(n: usize) -> SizeReport {
    eprintln!("N={n}: scalar-reference pass...");
    let (scalar_s, scalar) = run_once(n, true);
    eprintln!("N={n}: scalar {scalar_s:.3}s; vectorized pass...");
    let (fast_s, fast) = run_once(n, false);
    eprintln!("N={n}: fast {fast_s:.3}s ({:.2}x)", scalar_s / fast_s);

    // The whole point of the fast paths is that they change nothing but
    // host time: same pair count, same tally, same simulated timing.
    assert_eq!(fast.count, scalar.count, "pair count diverged at N={n}");
    assert_eq!(fast.run.tally, scalar.run.tally, "tally diverged at N={n}");
    assert_eq!(
        fast.run.timing.seconds.to_bits(),
        scalar.run.timing.seconds.to_bits(),
        "simulated time diverged at N={n}"
    );

    let t = &fast.run.tally;
    SizeReport {
        n,
        count: fast.count,
        scalar_s,
        fast_s,
        lane_ops: t.useful_lane_ops + t.predicated_lane_slots,
        sim_cycles: fast.run.timing.cycles,
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut sizes = vec![16_384usize, 65_536];
    if full {
        sizes.push(131_072);
    }

    let reports: Vec<SizeReport> = sizes.iter().map(|&n| measure(n)).collect();

    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>8} {:>14} {:>14}",
        "N", "count", "scalar_s", "fast_s", "speedup", "Mlane-ops/s", "Msim-cyc/s"
    );
    let mut entries = Vec::new();
    for r in &reports {
        let speedup = r.scalar_s / r.fast_s;
        let lane_rate = r.lane_ops as f64 / r.fast_s / 1e6;
        let cycle_rate = r.sim_cycles / r.fast_s / 1e6;
        println!(
            "{:>8} {:>12} {:>10.3} {:>10.3} {:>7.2}x {:>14.1} {:>14.1}",
            r.n, r.count, r.scalar_s, r.fast_s, speedup, lane_rate, cycle_rate
        );
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"pair_count\": {},\n",
                "      \"scalar_reference_s\": {:.6},\n",
                "      \"vectorized_s\": {:.6},\n",
                "      \"speedup\": {:.3},\n",
                "      \"lane_ops\": {},\n",
                "      \"lane_ops_per_s\": {:.0},\n",
                "      \"sim_cycles\": {:.0},\n",
                "      \"sim_cycles_per_s\": {:.0}\n",
                "    }}"
            ),
            r.n,
            r.count,
            r.scalar_s,
            r.fast_s,
            speedup,
            r.lane_ops,
            r.lane_ops as f64 / r.fast_s,
            r.sim_cycles,
            r.sim_cycles / r.fast_s,
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"sim_hotpath\",\n",
            "  \"workload\": \"fig2 2-PCF, register_shm plan, block=1024, r=25, 100^3 box\",\n",
            "  \"exec_mode\": \"sequential\",\n",
            "  \"bit_identical\": true,\n",
            "  \"sizes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        entries.join(",\n")
    );

    // crates/bench/ -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_hotpath.json");
    std::fs::write(path, &json).expect("write BENCH_sim_hotpath.json");
    eprintln!("wrote {path}");

    let gate = reports.iter().find(|r| r.n == 65_536).expect("N=65536 run");
    let speedup = gate.scalar_s / gate.fast_s;
    assert!(
        speedup >= 2.0,
        "acceptance gate failed: {speedup:.2}x < 2x at N=65536"
    );
    eprintln!("acceptance gate passed: {speedup:.2}x >= 2x at N=65536");
}
