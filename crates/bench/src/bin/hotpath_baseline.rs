//! Host-throughput baseline for the interpreter fast paths.
//!
//! Measures scalar-reference vs vectorized interpreter wall-clock via
//! `experiments::hotpath` (which asserts the two are bit-identical),
//! prints the structured report, and records `BENCH_sim_hotpath.json`
//! at the repository root.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tbs-bench --bin hotpath_baseline            # N = 16384, 65536
//! cargo run --release -p tbs-bench --bin hotpath_baseline -- --full  # adds N = 131072
//! ```
//!
//! The acceptance gate for the vectorized interpreter is a ≥2× speedup
//! at N = 65536 in `Sequential` mode. Pass `--json DIR` (or set
//! `TBS_REPORT_DIR`) to also mirror the schema-versioned
//! `sim_hotpath.json` report.

use tbs_bench::experiments::hotpath::{self, Sample};
use tbs_bench::report;
use tbs_json::Json;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut sizes = vec![16_384usize, 65_536];
    if full {
        sizes.push(131_072);
    }

    let samples: Vec<Sample> = sizes.iter().map(|&n| hotpath::measure(n)).collect();
    report::emit_result(hotpath::build_report_from(&samples));

    // The legacy flat benchmark record at the repository root, now
    // emitted through tbs-json (same fields as before).
    let entries: Vec<Json> = samples
        .iter()
        .map(|s| {
            Json::obj()
                .with("n", s.n)
                .with("pair_count", s.pair_count)
                .with("scalar_reference_s", s.scalar_s)
                .with("vectorized_s", s.fast_s)
                .with("speedup", s.speedup())
                .with("lane_ops", s.lane_ops)
                .with("lane_ops_per_s", s.lane_ops_per_s())
                .with("sim_cycles", s.sim_cycles)
                .with("sim_cycles_per_s", s.sim_cycles_per_s())
        })
        .collect();
    let doc = Json::obj()
        .with("benchmark", "sim_hotpath")
        .with(
            "workload",
            "fig2 2-PCF, register_shm plan, block=1024, r=25, 100^3 box",
        )
        .with("exec_mode", "sequential")
        .with("bit_identical", true)
        .with("sizes", Json::Arr(entries));

    // crates/bench/ -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_hotpath.json");
    std::fs::write(path, doc.render().expect("render hotpath JSON"))
        .expect("write BENCH_sim_hotpath.json");
    eprintln!("wrote {path}");

    let gate = samples.iter().find(|s| s.n == 65_536).expect("N=65536 run");
    let speedup = gate.speedup();
    assert!(
        speedup >= 2.0,
        "acceptance gate failed: {speedup:.2}x < 2x at N=65536"
    );
    eprintln!("acceptance gate passed: {speedup:.2}x >= 2x at N=65536");
}
