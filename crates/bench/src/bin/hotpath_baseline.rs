//! Host-throughput baseline for the interpreter fast paths.
//!
//! Measures the four interpreter routes — scalar reference, vectorized
//! op-by-op, fused tile passes, and the plan-compiled route — via
//! `experiments::hotpath` (which asserts all routes are bit-identical
//! and cross-checks the parallel block executor against a sequential
//! run), prints the structured report, and records
//! `BENCH_sim_hotpath.json` at the repository root. Two workloads run:
//! the fig2 2-PCF (Type-I output) and a privatized SDH on the
//! Register-SHM plan (Type-II output: fused histogram scatters plus the
//! packed Figure-3 cross-copy reduction).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tbs-bench --bin hotpath_baseline            # 2-PCF N = 16384, 65536; SDH N = 16384
//! cargo run --release -p tbs-bench --bin hotpath_baseline -- --full  # adds 2-PCF N = 131072, 262144; SDH N = 65536
//! cargo run --release -p tbs-bench --bin hotpath_baseline -- --full --budget-secs 120
//! ```
//!
//! Every route is quadratic in N, so `--full` sweeps used to be an
//! O(N²) footgun: one slow comparison route could hang CI for an hour.
//! Now each size prints per-route projected runtimes (quadratic
//! extrapolation from the previous size) before launching anything,
//! and with `--budget-secs S` any comparison route (scalar reference,
//! vectorized, sequential cross-check) projected over `S` seconds is
//! skipped with a loud note; its fields are omitted from the JSON
//! record and its acceptance gates are reported as skipped. The fused
//! and compiled routes always run.
//!
//! Acceptance gates: at N = 65536 the vectorized 2-PCF route must be
//! ≥2× the scalar reference, the fused route ≥2× the vectorized route,
//! the compiled route ≥3× the fused route, and the cache memo must
//! replay at least half of its probes; at N = 16384 the fused Type-II
//! (SDH) route must be ≥2× the vectorized route, the compiled SDH route
//! ≥2× the fused route (compiled output stage end-to-end; also gated at
//! N = 65536 under `--full`), and the compiled 2-PCF route ≥3× the
//! fused route. Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also
//! mirror the schema-versioned `sim_hotpath.json` report.

use tbs_bench::experiments::hotpath::{self, Sample};
use tbs_bench::report;
use tbs_json::Json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let budget_secs: Option<f64> = args
        .iter()
        .enumerate()
        .find_map(|(i, a)| match a.strip_prefix("--budget-secs=") {
            Some(v) => Some(v.to_string()),
            None => (a == "--budget-secs").then(|| args.get(i + 1).cloned().unwrap_or_default()),
        })
        .map(|v| {
            v.parse()
                .expect("--budget-secs takes a number of seconds, e.g. --budget-secs 120")
        });
    let mut sizes = vec![16_384usize, 65_536];
    let mut sdh_sizes = vec![16_384usize];
    if full {
        // 262144 exceeds SCALAR_CEILING: vectorized + fused only.
        sizes.extend([131_072, 262_144]);
        sdh_sizes.push(65_536);
    }

    let mut samples: Vec<Sample> = Vec::new();
    for &n in &sizes {
        let s = hotpath::measure_budgeted(n, budget_secs, samples.last());
        samples.push(s);
    }
    let mut sdh: Vec<Sample> = Vec::new();
    for &n in &sdh_sizes {
        let s = hotpath::measure_sdh_budgeted(n, budget_secs, sdh.last());
        sdh.push(s);
    }
    report::emit_result(hotpath::build_report_from(&samples, &sdh));

    // The legacy flat benchmark record at the repository root, now
    // emitted through tbs-json (same fields as before, plus the fused
    // route, its interpreter statistics, and the Type-II SDH workload).
    let entry = |s: &Sample| {
        let mut e = Json::obj().with("n", s.n).with("pair_count", s.pair_count);
        if let Some(v) = s.scalar_s {
            e = e.with("scalar_reference_s", v);
        }
        if let Some(v) = s.fast_s {
            e = e.with("vectorized_s", v);
        }
        e = e.with("fused_s", s.fused_s);
        if let Some(v) = s.fused_seq_s {
            e = e.with("fused_sequential_s", v);
        }
        e = e.with("compiled_s", s.compiled_s);
        if let Some(v) = s.speedup() {
            e = e.with("speedup", v);
        }
        if let Some(v) = s.fused_speedup() {
            e = e.with("fused_speedup", v);
        }
        if let Some(v) = s.fused_vs_vectorized() {
            e = e.with("fused_vs_vectorized", v);
        }
        e = e.with("compiled_vs_fused", s.compiled_vs_fused());
        if let Some(v) = s.parallel_vs_sequential() {
            e = e.with("parallel_vs_sequential", v);
        }
        e.with("dispatches", s.dispatches)
            .with("fused_ops", s.fused_ops)
            .with("fused_coverage", s.fused_coverage)
            .with("compiled_ops", s.compiled_ops)
            .with("compiled_coverage", s.compiled_coverage)
            .with("memo_hit_rate", s.memo_hit_rate)
            .with("lane_ops", s.lane_ops)
            .with("lane_ops_per_s", s.lane_ops_per_s())
            .with("sim_cycles", s.sim_cycles)
            .with("sim_cycles_per_s", s.sim_cycles_per_s())
    };
    let doc = Json::obj()
        .with("benchmark", "sim_hotpath")
        .with(
            "workload",
            "fig2 2-PCF + privatized SDH (256 buckets), register_shm plan, \
             block=1024, r=25, 100^3 box",
        )
        .with(
            "exec_mode",
            "parallel (sequential cross-checked on the fused route)",
        )
        .with("bit_identical", true)
        .with("sizes", Json::Arr(samples.iter().map(entry).collect()))
        .with("sdh_sizes", Json::Arr(sdh.iter().map(entry).collect()));

    // crates/bench/ -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_hotpath.json");
    std::fs::write(path, doc.render().expect("render hotpath JSON"))
        .expect("write BENCH_sim_hotpath.json");
    eprintln!("wrote {path}");

    // Acceptance gates: each asserts its floor when the routes behind it
    // ran. A ratio made unmeasurable by a --budget-secs skip is reported
    // (loudly) as skipped, never silently passed; without a budget every
    // route runs and every gate asserts, exactly as before.
    let gate = samples.iter().find(|s| s.n == 65_536).expect("N=65536 run");
    let small = samples.iter().find(|s| s.n == 16_384).expect("N=16384 run");
    let sdh_gate = sdh.iter().find(|s| s.n == 16_384).expect("SDH N=16384 run");
    let mut verdicts: Vec<String> = Vec::new();
    let mut check = |name: &str, value: Option<f64>, floor: f64| match value {
        Some(v) => {
            assert!(
                v >= floor,
                "acceptance gate failed: {name} {v:.2} < {floor} floor"
            );
            verdicts.push(format!("{name} {v:.2} >= {floor}"));
        }
        None => {
            eprintln!("acceptance gate SKIPPED: {name} (route skipped under --budget-secs)");
            verdicts.push(format!("{name} skipped"));
        }
    };
    check("vectorized over scalar at N=65536", gate.speedup(), 2.0);
    check(
        "fused over vectorized at N=65536",
        gate.fused_vs_vectorized(),
        2.0,
    );
    check(
        "compiled over fused at N=65536",
        Some(gate.compiled_vs_fused()),
        3.0,
    );
    // The L2 cache memo must keep paying off at large N — its hit rate
    // collapsing was exactly the regression this gate exists to catch.
    check("memo hit rate at N=65536", Some(gate.memo_hit_rate), 0.5);
    check(
        "compiled over fused at N=16384",
        Some(small.compiled_vs_fused()),
        3.0,
    );
    check(
        "fused SDH over vectorized at N=16384",
        sdh_gate.fused_vs_vectorized(),
        2.0,
    );
    check(
        "compiled SDH over fused at N=16384",
        Some(sdh_gate.compiled_vs_fused()),
        2.0,
    );
    if let Some(s) = sdh.iter().find(|s| s.n == 65_536) {
        check(
            "compiled SDH over fused at N=65536",
            Some(s.compiled_vs_fused()),
            2.0,
        );
    }
    eprintln!("acceptance gates: {}", verdicts.join("; "));
}
