//! Host-throughput baseline for the interpreter fast paths.
//!
//! Measures the four interpreter routes — scalar reference, vectorized
//! op-by-op, fused tile passes, and the plan-compiled route — via
//! `experiments::hotpath` (which asserts all routes are bit-identical
//! and cross-checks the parallel block executor against a sequential
//! run), prints the structured report, and records
//! `BENCH_sim_hotpath.json` at the repository root. Two workloads run:
//! the fig2 2-PCF (Type-I output) and a privatized SDH on the
//! Register-SHM plan (Type-II output: fused histogram scatters plus the
//! packed Figure-3 cross-copy reduction).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tbs-bench --bin hotpath_baseline            # 2-PCF N = 16384, 65536; SDH N = 16384
//! cargo run --release -p tbs-bench --bin hotpath_baseline -- --full  # adds 2-PCF N = 131072, 262144; SDH N = 65536
//! ```
//!
//! Acceptance gates: at N = 65536 the vectorized 2-PCF route must be
//! ≥2× the scalar reference, the fused route ≥2× the vectorized route,
//! the compiled route ≥3× the fused route, and the cache memo must
//! replay at least half of its probes; at N = 16384 the fused Type-II
//! (SDH) route must be ≥2× the vectorized route and the compiled 2-PCF
//! route ≥3× the fused route. Pass `--json DIR` (or set
//! `TBS_REPORT_DIR`) to also mirror the schema-versioned
//! `sim_hotpath.json` report.

use tbs_bench::experiments::hotpath::{self, Sample};
use tbs_bench::report;
use tbs_json::Json;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut sizes = vec![16_384usize, 65_536];
    let mut sdh_sizes = vec![16_384usize];
    if full {
        // 262144 exceeds SCALAR_CEILING: vectorized + fused only.
        sizes.extend([131_072, 262_144]);
        sdh_sizes.push(65_536);
    }

    let samples: Vec<Sample> = sizes.iter().map(|&n| hotpath::measure(n)).collect();
    let sdh: Vec<Sample> = sdh_sizes.iter().map(|&n| hotpath::measure_sdh(n)).collect();
    report::emit_result(hotpath::build_report_from(&samples, &sdh));

    // The legacy flat benchmark record at the repository root, now
    // emitted through tbs-json (same fields as before, plus the fused
    // route, its interpreter statistics, and the Type-II SDH workload).
    let entry = |s: &Sample| {
        let mut e = Json::obj().with("n", s.n).with("pair_count", s.pair_count);
        if let Some(v) = s.scalar_s {
            e = e.with("scalar_reference_s", v);
        }
        e = e
            .with("vectorized_s", s.fast_s)
            .with("fused_s", s.fused_s)
            .with("fused_sequential_s", s.fused_seq_s)
            .with("compiled_s", s.compiled_s);
        if let Some(v) = s.speedup() {
            e = e.with("speedup", v);
        }
        if let Some(v) = s.fused_speedup() {
            e = e.with("fused_speedup", v);
        }
        e.with("fused_vs_vectorized", s.fused_vs_vectorized())
            .with("compiled_vs_fused", s.compiled_vs_fused())
            .with("parallel_vs_sequential", s.parallel_vs_sequential())
            .with("dispatches", s.dispatches)
            .with("fused_ops", s.fused_ops)
            .with("fused_coverage", s.fused_coverage)
            .with("compiled_ops", s.compiled_ops)
            .with("compiled_coverage", s.compiled_coverage)
            .with("memo_hit_rate", s.memo_hit_rate)
            .with("lane_ops", s.lane_ops)
            .with("lane_ops_per_s", s.lane_ops_per_s())
            .with("sim_cycles", s.sim_cycles)
            .with("sim_cycles_per_s", s.sim_cycles_per_s())
    };
    let doc = Json::obj()
        .with("benchmark", "sim_hotpath")
        .with(
            "workload",
            "fig2 2-PCF + privatized SDH (256 buckets), register_shm plan, \
             block=1024, r=25, 100^3 box",
        )
        .with(
            "exec_mode",
            "parallel (sequential cross-checked on the fused route)",
        )
        .with("bit_identical", true)
        .with("sizes", Json::Arr(samples.iter().map(entry).collect()))
        .with("sdh_sizes", Json::Arr(sdh.iter().map(entry).collect()));

    // crates/bench/ -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_hotpath.json");
    std::fs::write(path, doc.render().expect("render hotpath JSON"))
        .expect("write BENCH_sim_hotpath.json");
    eprintln!("wrote {path}");

    let gate = samples.iter().find(|s| s.n == 65_536).expect("N=65536 run");
    let speedup = gate.speedup().expect("scalar route runs at N=65536");
    assert!(
        speedup >= 2.0,
        "acceptance gate failed: vectorized {speedup:.2}x < 2x over scalar at N=65536"
    );
    let fusion = gate.fused_vs_vectorized();
    assert!(
        fusion >= 2.0,
        "acceptance gate failed: fused {fusion:.2}x < 2x over vectorized at N=65536"
    );
    let compiled = gate.compiled_vs_fused();
    assert!(
        compiled >= 3.0,
        "acceptance gate failed: compiled {compiled:.2}x < 3x over fused at N=65536"
    );
    // The L2 cache memo must keep paying off at large N — its hit rate
    // collapsing was exactly the regression this gate exists to catch.
    let memo = gate.memo_hit_rate;
    assert!(
        memo >= 0.5,
        "acceptance gate failed: memo hit rate {memo:.2} < 0.5 at N=65536"
    );
    let small = samples.iter().find(|s| s.n == 16_384).expect("N=16384 run");
    let compiled_small = small.compiled_vs_fused();
    assert!(
        compiled_small >= 3.0,
        "acceptance gate failed: compiled {compiled_small:.2}x < 3x over fused at N=16384"
    );
    let sdh_gate = sdh.iter().find(|s| s.n == 16_384).expect("SDH N=16384 run");
    let sdh_fusion = sdh_gate.fused_vs_vectorized();
    assert!(
        sdh_fusion >= 2.0,
        "acceptance gate failed: fused SDH {sdh_fusion:.2}x < 2x over vectorized at N=16384"
    );
    eprintln!(
        "acceptance gates passed: vectorized {speedup:.2}x >= 2x over scalar, \
         fused {fusion:.2}x >= 2x over vectorized, compiled {compiled:.2}x >= 3x \
         over fused and memo {memo:.2} >= 0.5 at N=65536 (2-PCF); \
         compiled {compiled_small:.2}x >= 3x over fused at N=16384; \
         fused SDH {sdh_fusion:.2}x >= 2x over vectorized at N=16384"
    );
}
