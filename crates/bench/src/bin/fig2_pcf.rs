//! Regenerate the paper's Figure 2 (2-PCF kernel comparison).
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::fig2;
use tbs_datagen::paper_sweep;

fn main() {
    let cfg = DeviceConfig::titan_x();
    print!("{}", fig2::report(&paper_sweep(10, 1024), &cfg));
}
