//! Regenerate the paper's Figure 2 (2-PCF kernel comparison).
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write `fig2.json`.
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::fig2;
use tbs_bench::report;
use tbs_datagen::paper_sweep;

fn main() {
    let cfg = DeviceConfig::titan_x();
    report::emit_result(fig2::build_report(&paper_sweep(10, 1024), &cfg));
}
