//! Extension study: multi-GPU SDH decomposition (functional scaling plus
//! the paper-scale closed-form prediction).
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write
//! `ext_multigpu.json` and `ext_multigpu_predicted.json`.
use tbs_bench::experiments::ext_multigpu;
use tbs_bench::report;

fn main() {
    report::emit_result(ext_multigpu::build_report(8192, 64));
    println!();
    report::emit_result(ext_multigpu::build_predicted_report(
        2_000_896,
        &gpu_sim::DeviceConfig::titan_x(),
    ));
}
