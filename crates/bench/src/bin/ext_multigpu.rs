//! Extension study: multi-GPU SDH decomposition (functional).
use tbs_bench::experiments::ext_multigpu;

fn main() {
    print!("{}", ext_multigpu::report(8192, 64));
    println!();
    print!(
        "{}",
        ext_multigpu::report_predicted(2_000_896, &gpu_sim::DeviceConfig::titan_x())
    );
}
