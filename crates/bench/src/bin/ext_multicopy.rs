//! Extension study: multiple private histogram copies per block.
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write
//! `ext_multicopy.json`.
use tbs_bench::experiments::ext_multicopy;
use tbs_bench::report;

fn main() {
    report::emit_result(ext_multicopy::build_report(4096, 256));
}
