//! Extension study: multiple private histogram copies per block.
use tbs_bench::experiments::ext_multicopy;

fn main() {
    print!("{}", ext_multicopy::report(4096, 256));
}
