//! Regenerate the paper's Figure 5 (Reg-ROC-Out vs histogram size).
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write `fig5.json`.
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::fig5;
use tbs_bench::report;

fn main() {
    report::emit_result(fig5::build_report(fig5::FIG5_N, &DeviceConfig::titan_x()));
}
