//! Regenerate the paper's Figure 5 (Reg-ROC-Out vs histogram size).
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::fig5;

fn main() {
    print!("{}", fig5::report(fig5::FIG5_N, &DeviceConfig::titan_x()));
}
