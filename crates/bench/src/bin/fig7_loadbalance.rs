//! Regenerate the paper's Figure 7 (intra-block load balancing).
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write `fig7.json`.
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::fig7;
use tbs_bench::report;

fn main() {
    report::emit_result(fig7::build_report(&DeviceConfig::titan_x()));
}
