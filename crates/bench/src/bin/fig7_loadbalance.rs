//! Regenerate the paper's Figure 7 (intra-block load balancing).
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::fig7;

fn main() {
    print!("{}", fig7::report(&DeviceConfig::titan_x()));
}
