//! Landy–Szalay 2-point correlation function over the grid-pruned
//! DD/DR/RR pipeline — the large-N cosmology scenario the spatial
//! front end exists for.
//!
//! Generates a clustered data catalog (Gaussian blobs) and a uniform
//! random catalog in a periodic box, runs the three grid-pruned pair
//! counts (DD, DR, RR) through the simulated device, and prints the
//! normalized Landy–Szalay estimator
//! ξ(r) = (DD̂ − 2·DR̂ + RR̂) / RR̂ per radial bin.
//!
//! Usage (all flags optional):
//!
//! ```text
//! cargo run --release -p tbs-bench --bin ls_estimator -- \
//!     --n 1048576 --nr 1048576 --rmax 5 --bins 10 --blobs 64 --sigma 4 --seed 7
//! ```
//!
//! `--n 10000000` (with `--nr 10000000`) is the N = 10⁷ end-to-end run
//! recorded in EXPERIMENTS.md; it completes in minutes because the grid
//! visits only the candidate cell pairs, where all-pairs would need
//! ~5×10¹³ distance evaluations.

use std::time::Instant;

use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{landy_szalay, ls_pair_counts, PairwisePlan};
use tbs_core::grid::{GridOptions, RadialBins};
use tbs_datagen::{gaussian_blobs, periodic_uniform_points};
use tbs_json::Json;

const BOX: f32 = 100.0;
const BLOCK: u32 = 1024;

fn arg<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} takes a number, got `{v}`"))
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg(&args, "--n", 1 << 20);
    let nr: usize = arg(&args, "--nr", n);
    let r_max: f32 = arg(&args, "--rmax", 5.0);
    let bins: u32 = arg(&args, "--bins", 10);
    let n_blobs: usize = arg(&args, "--blobs", 64);
    let sigma: f32 = arg(&args, "--sigma", 4.0);
    let seed: u64 = arg(&args, "--seed", 7);

    eprintln!("ls_estimator: generating catalogs (nd={n}, nr={nr}, {n_blobs} blobs σ={sigma})...");
    let t0 = Instant::now();
    // Blob centers themselves are drawn from a uniform catalog so the
    // layout is seeded-deterministic at any blob count.
    let centers_pts = periodic_uniform_points::<3>(n_blobs.max(1), BOX, seed ^ 0xb10b);
    let centers: Vec<[f32; 3]> = (0..centers_pts.len())
        .map(|i| centers_pts.point(i))
        .collect();
    let data = gaussian_blobs::<3>(n, BOX, &centers, &vec![sigma; centers.len()], seed);
    let rand = periodic_uniform_points::<3>(nr, BOX, seed ^ 0xfeed);
    eprintln!(
        "ls_estimator: catalogs ready in {:.2}s; running DD/DR/RR (r_max={r_max}, {bins} bins)...",
        t0.elapsed().as_secs_f64()
    );

    let rb = RadialBins::new(bins, r_max);
    let mut dev = Device::new(DeviceConfig::titan_x().with_compiled(true));
    let t = Instant::now();
    let counts = ls_pair_counts(
        &mut dev,
        &data,
        &rand,
        rb,
        PairwisePlan::register_shm(BLOCK),
        &GridOptions::default(),
    )
    .expect("LS pipeline");
    let wall_s = t.elapsed().as_secs_f64();
    let xi = landy_szalay(&counts);

    eprintln!(
        "ls_estimator: DD {} launches, DR {}, RR {} — wall {wall_s:.2}s \
         (DD pruned {:.2}% of pair mass)",
        counts.dd_run.launches(),
        counts.dr_run.launches(),
        counts.rr_run.launches(),
        counts.dd_run.stats.pruned_fraction() * 100.0
    );
    println!("# r_lo r_hi DD DR RR xi");
    let w = rb.bin_width();
    for (i, x) in xi.iter().enumerate().take(bins as usize) {
        println!(
            "{:.3} {:.3} {} {} {} {x:+.6}",
            i as f32 * w,
            (i + 1) as f32 * w,
            counts.dd.counts()[i],
            counts.dr.counts()[i],
            counts.rr.counts()[i],
        );
    }

    // Machine-readable record (stdout table is the human view).
    if let Some(dir) = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
    {
        let doc = Json::obj()
            .with("benchmark", "ls_estimator")
            .with("nd", n)
            .with("nr", nr)
            .with("r_max", r_max as f64)
            .with("bins", bins)
            .with("wall_s", wall_s)
            .with(
                "launches",
                counts.dd_run.launches() + counts.dr_run.launches() + counts.rr_run.launches(),
            )
            .with(
                "dd",
                Json::Arr(counts.dd.counts().iter().map(|&c| Json::from(c)).collect()),
            )
            .with(
                "dr",
                Json::Arr(counts.dr.counts().iter().map(|&c| Json::from(c)).collect()),
            )
            .with(
                "rr",
                Json::Arr(counts.rr.counts().iter().map(|&c| Json::from(c)).collect()),
            )
            .with("xi", Json::Arr(xi.iter().map(|&x| Json::from(x)).collect()));
        let path = std::path::Path::new(dir).join("ls_estimator.json");
        std::fs::create_dir_all(dir).expect("create --json dir");
        std::fs::write(&path, doc.render().expect("render LS JSON")).expect("write LS JSON");
        eprintln!("wrote {}", path.display());
    }
}
