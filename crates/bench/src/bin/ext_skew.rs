//! Extension study: SDH atomic contention under data skew (functional).
use tbs_bench::experiments::ext_skew;

fn main() {
    print!("{}", ext_skew::report(4096, 1024, 128));
}
