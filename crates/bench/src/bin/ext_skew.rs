//! Extension study: SDH atomic contention under data skew (functional).
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write `ext_skew.json`.
use tbs_bench::experiments::ext_skew;
use tbs_bench::report;

fn main() {
    report::emit_result(ext_skew::build_report(4096, 1024, 128));
}
