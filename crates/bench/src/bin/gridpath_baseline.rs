//! Grid-vs-all-pairs wall-clock baseline for the spatial front end.
//!
//! Runs the uniform-grid pruned 2-PCF count and the monolithic
//! all-pairs route over the same seeded catalogs (both on the
//! plan-compiled interpreter), asserts the counts are bit-identical
//! (device vs device and vs the CPU grid oracle), prints the
//! structured report, and records `BENCH_sim_gridpath.json` at the
//! repository root.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tbs-bench --bin gridpath_baseline            # N = 65536, 262144, 1048576
//! cargo run --release -p tbs-bench --bin gridpath_baseline -- --full  # measure 1M all-pairs directly (~minutes)
//! ```
//!
//! All-pairs is quadratic (~200 s at N = 1048576 here), so by default
//! it is measured directly only up to N = 131072 and projected
//! quadratically above that — the default run stays in CI-smoke
//! territory while `--full` pays for the direct measurement.
//!
//! Every size also reruns the same catalog on the per-cell-pair oracle
//! route so the packed-launch win is measured, not assumed (counts
//! asserted bit-identical packed vs unpacked vs all-pairs in-run).
//!
//! Acceptance gates: the grid route must beat all-pairs by ≥10× at
//! N = 1048576, the cull must prune ≥90 % of the pair mass at
//! N = 262144, the packed route must beat per-cell-pair by ≥2× at
//! N = 262144 with ≤10× population-classes launches, and the
//! SpatialPlan model's pick must match the measured winner at every
//! size — the same floors the perf gate pins. Pass `--json DIR`
//! (or set `TBS_REPORT_DIR`) to also mirror the schema-versioned
//! `sim_gridpath.json` report.

use tbs_bench::experiments::gridpath::{self, GridSample, GridpathConfig};
use tbs_bench::report;
use tbs_json::Json;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        GridpathConfig::full()
    } else {
        GridpathConfig::default_run()
    };
    let sizes = [65_536usize, 262_144, 1_048_576];

    eprintln!(
        "gridpath: measuring the all-pairs anchor at N={}...",
        cfg.anchor_n
    );
    let (anchor_s, _) = gridpath::measure_all_pairs(cfg.anchor_n);
    eprintln!("gridpath: anchor {anchor_s:.3}s");
    let samples: Vec<GridSample> = sizes
        .iter()
        .map(|&n| gridpath::measure(n, &cfg, (cfg.anchor_n, anchor_s)))
        .collect();
    report::emit_result(gridpath::build_report_from(&samples));

    let entry = |s: &GridSample| {
        let mut e = Json::obj()
            .with("n", s.n)
            .with("pair_count", s.count)
            .with("cells", s.cells)
            .with("occupied_cells", s.occupied_cells)
            .with("launches", s.launches)
            .with("packed_launches", s.packed_launches)
            .with("population_classes", s.population_classes)
            .with("pruned_pair_fraction", s.pruned_fraction)
            .with("build_s", s.build_s)
            .with("grid_s", s.grid_s)
            .with("unpacked_s", s.unpacked_s)
            .with("packed_vs_unpacked", s.packed_vs_unpacked());
        if let Some(v) = s.all_pairs_s {
            e = e.with("all_pairs_s", v).with("all_pairs_measured", true);
        } else {
            e = e
                .with("all_pairs_s", s.all_pairs_projected_s)
                .with("all_pairs_measured", false);
        }
        e.with("grid_vs_allpairs", s.speedup())
            .with("model_speedup", s.model_speedup)
            .with("model_picks_grid", s.model_picks_grid)
            .with("model_agrees", s.model_agrees())
    };
    let doc = Json::obj()
        .with("benchmark", "sim_gridpath")
        .with(
            "workload",
            "uniform-grid pruned 2-PCF count vs monolithic all-pairs, r=5, 100^3 box, \
             target 512 pts/cell, register_shm plan, block=1024, compiled route",
        )
        .with("anchor_n", cfg.anchor_n)
        .with("anchor_all_pairs_s", anchor_s)
        .with("bit_identical", true)
        .with("sizes", Json::Arr(samples.iter().map(entry).collect()));

    // crates/bench/ -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_gridpath.json");
    std::fs::write(path, doc.render().expect("render gridpath JSON"))
        .expect("write BENCH_sim_gridpath.json");
    eprintln!("wrote {path}");

    let big = samples
        .iter()
        .find(|s| s.n == 1_048_576)
        .expect("N=1048576 run");
    let speedup = big.speedup();
    assert!(
        speedup >= 10.0,
        "acceptance gate failed: grid {speedup:.1}x < 10x over all-pairs at N=1048576"
    );
    assert!(
        big.model_picks_grid,
        "acceptance gate failed: SpatialPlan still routes all-pairs at N=1048576 \
         (model predicts {:.2}x)",
        big.model_speedup
    );
    let mid = samples
        .iter()
        .find(|s| s.n == 262_144)
        .expect("N=262144 run");
    assert!(
        mid.pruned_fraction >= 0.9,
        "acceptance gate failed: pruned fraction {:.3} < 0.9 at N=262144",
        mid.pruned_fraction
    );
    let packed_win = mid.packed_vs_unpacked();
    assert!(
        packed_win >= 2.0,
        "acceptance gate failed: packed route only {packed_win:.2}x over per-cell-pair \
         at N=262144"
    );
    assert!(
        mid.launches <= 10 * mid.population_classes.max(1),
        "acceptance gate failed: {} packed launches for {} population classes at N=262144 \
         (must stay within 10x; above that the 4096-block chunk cap adds launches)",
        mid.launches,
        mid.population_classes
    );
    for s in &samples {
        assert!(
            s.model_agrees(),
            "acceptance gate failed: SpatialPlan model pick ({}) disagrees with the measured \
             winner ({:.1}x grid-over-all-pairs) at N={}",
            if s.model_picks_grid {
                "grid"
            } else {
                "all-pairs"
            },
            s.speedup(),
            s.n
        );
    }
    eprintln!(
        "acceptance gates passed: grid {speedup:.1}x >= 10x over all-pairs at N=1048576 \
         ({}); pruned fraction {:.3} >= 0.9 and packed {packed_win:.1}x >= 2x over \
         per-cell-pair at N=262144; launches within 10x of population classes and the \
         model pick matches the measured winner at every size",
        if big.all_pairs_s.is_some() {
            "all-pairs measured directly"
        } else {
            "all-pairs projected quadratically from the anchor"
        },
        mid.pruned_fraction
    );
}
