//! Run every table/figure reproduction in sequence (the EXPERIMENTS.md
//! generator). `cargo run --release -p tbs-bench --bin all_experiments`.
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::*;
use tbs_cpu::CpuModel;
use tbs_datagen::paper_sweep;

fn main() {
    let cfg = DeviceConfig::titan_x();
    let cpu = CpuModel::xeon_e5_2640_v2();
    let sweep = paper_sweep(10, 1024);
    let sections: Vec<(&str, String)> = vec![
        ("Figure 2", fig2::report(&sweep, &cfg)),
        ("Table II", tables::table2_report(512 * 1024, &cfg)),
        ("Figure 4", fig4::report(&sweep, &cfg, &cpu)),
        ("Table III", tables::table3_report(512 * 1024, &cfg)),
        ("Table IV", tables::table4_report(512 * 1024, &cfg)),
        ("Figure 5", fig5::report(fig5::FIG5_N, &cfg)),
        ("Figure 7", fig7::report(&cfg)),
        ("Figure 9", fig9::report(&sweep, &cfg, &cpu)),
        ("Extension: architectures", ext_arch::report(512 * 1024)),
        ("Extension: data skew", ext_skew::report(4096, 1024, 128)),
        ("Extension: Type-III output", ext_type3::report(2048, 64)),
        ("Extension: multi-GPU", ext_multigpu::report(4096, 64)),
        (
            "Extension: multi-copy privatization",
            ext_multicopy::report(4096, 256),
        ),
        (
            "Extension: block size",
            ext_blocksize::report(512 * 1024, &cfg),
        ),
    ];
    for (name, body) in sections {
        println!("================================================================");
        println!("{name}");
        println!("================================================================");
        println!("{body}");
    }
}
