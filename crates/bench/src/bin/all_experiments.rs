//! Run every table/figure reproduction in sequence (the EXPERIMENTS.md
//! generator). `cargo run --release -p tbs-bench --bin all_experiments`.
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also mirror every
//! section as a schema-versioned `<name>.json`.
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::*;
use tbs_bench::report::{self, Report, ReportError};
use tbs_cpu::CpuModel;
use tbs_datagen::paper_sweep;

fn main() {
    let cfg = DeviceConfig::titan_x();
    let cpu = CpuModel::xeon_e5_2640_v2();
    let sweep = paper_sweep(10, 1024);
    let sections: Vec<(&str, Result<Report, ReportError>)> = vec![
        ("Figure 2", fig2::build_report(&sweep, &cfg)),
        ("Table II", tables::build_table2_report(512 * 1024, &cfg)),
        ("Figure 4", fig4::build_report(&sweep, &cfg, &cpu)),
        ("Table III", tables::build_table3_report(512 * 1024, &cfg)),
        ("Table IV", tables::build_table4_report(512 * 1024, &cfg)),
        ("Figure 5", fig5::build_report(fig5::FIG5_N, &cfg)),
        ("Figure 7", fig7::build_report(&cfg)),
        ("Figure 9", fig9::build_report(&sweep, &cfg, &cpu)),
        (
            "Extension: architectures",
            ext_arch::build_report(512 * 1024),
        ),
        (
            "Extension: data skew",
            ext_skew::build_report(4096, 1024, 128),
        ),
        (
            "Extension: Type-III output",
            ext_type3::build_report(2048, 64),
        ),
        ("Extension: multi-GPU", ext_multigpu::build_report(4096, 64)),
        (
            "Extension: multi-copy privatization",
            ext_multicopy::build_report(4096, 256),
        ),
        (
            "Extension: block size",
            ext_blocksize::build_report(512 * 1024, &cfg),
        ),
    ];
    for (name, result) in sections {
        println!("================================================================");
        println!("{name}");
        println!("================================================================");
        report::emit_result(result);
        println!();
    }
}
