//! Regenerate the paper's Table IV (SDH resource utilization).
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::tables;

fn main() {
    print!(
        "{}",
        tables::table4_report(512 * 1024, &DeviceConfig::titan_x())
    );
}
