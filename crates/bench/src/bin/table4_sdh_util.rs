//! Regenerate the paper's Table IV (SDH resource utilization).
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write `table4.json`.
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::tables;
use tbs_bench::report;

fn main() {
    report::emit_result(tables::build_table4_report(
        512 * 1024,
        &DeviceConfig::titan_x(),
    ));
}
