//! Extension study: block-size optimization (the paper's B = 1024).
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write
//! `ext_blocksize.json`.
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::ext_blocksize;
use tbs_bench::report;

fn main() {
    report::emit_result(ext_blocksize::build_report(
        1024 * 1024,
        &DeviceConfig::titan_x(),
    ));
}
