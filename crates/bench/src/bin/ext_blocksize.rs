//! Extension study: block-size optimization (the paper's B = 1024).
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::ext_blocksize;

fn main() {
    print!(
        "{}",
        ext_blocksize::report(1024 * 1024, &DeviceConfig::titan_x())
    );
}
