//! Regenerate the paper's Table II (2-PCF resource utilization).
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::tables;

fn main() {
    print!(
        "{}",
        tables::table2_report(512 * 1024, &DeviceConfig::titan_x())
    );
}
