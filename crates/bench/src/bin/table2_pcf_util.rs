//! Regenerate the paper's Table II (2-PCF resource utilization).
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write `table2.json`.
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::tables;
use tbs_bench::report;

fn main() {
    report::emit_result(tables::build_table2_report(
        512 * 1024,
        &DeviceConfig::titan_x(),
    ));
}
