//! Extension study: Type-III join output allocation (functional).
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write `ext_type3.json`.
use tbs_bench::experiments::ext_type3;
use tbs_bench::report;

fn main() {
    report::emit_result(ext_type3::build_report(2048, 64));
}
