//! Extension study: Type-III join output allocation (functional).
use tbs_bench::experiments::ext_type3;

fn main() {
    print!("{}", ext_type3::report(2048, 64));
}
