//! Query-service SLO baseline for the `tbs-serve` serving layer.
//!
//! Runs `experiments::ext_serve`: the coalescing-throughput leg (k = 12
//! batchable queries one-at-a-time vs as one admission batch, answers
//! asserted bit-identical in-run), the SDH-heavy coalescing leg (a
//! histogram-dominated mix exercising identical-spec sink dedup and the
//! compiled multi-consumer sweep), the gridded coalescing leg (a burst
//! of gridded count-withins vs one packed multi-radius sweep over a
//! shared covering catalog), the single-query latency
//! distribution at CI size, and the shard-cache hit rate. Prints the
//! structured report and records `BENCH_ext_serve.json` at the
//! repository root.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tbs-bench --bin serve_baseline             # ratio at N = 16384, 65536
//! cargo run --release -p tbs-bench --bin serve_baseline -- --quick  # gate size only (N = 16384), for CI
//! ```
//!
//! Every sweep is quadratic in N, so the N = 65536 leg costs minutes
//! (one coalesced sweep ≈ 35 s on a CI-class host, plus k sequential
//! sweeps); `--quick` keeps the bin CI-friendly while the default run
//! measures the acceptance size. The SDH-heavy leg runs at the gate
//! size on both (its sequential side is ten full histogram sweeps —
//! already the expensive shape the dedup exists to avoid).
//!
//! Acceptance gates: coalescing must be ≥2× over sequential serving at
//! every measured size (the headline claim, at N = 65536 on a default
//! run), the SDH-heavy and gridded mixes must also coalesce ≥2× at the
//! gate size, and the shard-upload cache must replay at least half of its
//! probes. The N = 65536 gate is reported as skipped — loudly, never
//! silently passed — under `--quick`. Pass `--json DIR` (or set
//! `TBS_REPORT_DIR`) to also mirror the schema-versioned
//! `ext_serve.json` report.

use tbs_bench::experiments::ext_serve::{self, ServeSample};
use tbs_bench::report;
use tbs_json::Json;

const LATENCY_N: usize = 4_096;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick { &[16_384] } else { &[16_384, 65_536] };

    let samples: Vec<ServeSample> = sizes.iter().map(|&n| ext_serve::measure_ratio(n)).collect();
    let sdh = [ext_serve::measure_ratio_sdh(16_384)];
    let gridded = [ext_serve::measure_ratio_gridded(16_384)];
    let latency = ext_serve::measure_latency(LATENCY_N);
    report::emit_result(ext_serve::build_report_from(
        &samples, &sdh, &gridded, &latency,
    ));

    let entry = |s: &ServeSample| {
        Json::obj()
            .with("n", s.n)
            .with("queries", s.k)
            .with("sinks", s.sinks)
            .with("sequential_s", s.sequential_s)
            .with("batched_s", s.batched_s)
            .with("batched_vs_sequential", s.batched_vs_sequential())
            .with("cache_hit_rate", s.stats.cache_hit_rate())
            .with("sim_seconds", s.stats.sim_seconds)
            .with("tasks", s.stats.tasks)
    };
    let doc = Json::obj()
        .with("benchmark", "ext_serve")
        .with(
            "workload",
            "tbs-serve coalescing: k=12 batchable queries (16 sinks) plus the k=12 \
             SDH-heavy mix (5 deduped sinks), 2 workers/shards, \
             uniform 100^3 box; 40 single-query latency probes at N=4096",
        )
        .with("bit_identical", true)
        .with("sizes", Json::Arr(samples.iter().map(entry).collect()))
        .with("sdh_sizes", Json::Arr(sdh.iter().map(entry).collect()))
        .with(
            "gridded_sizes",
            Json::Arr(gridded.iter().map(entry).collect()),
        )
        .with(
            "latency",
            Json::obj()
                .with("n", latency.n)
                .with("probes", latency.probes)
                .with("p50_ms", latency.p50_ms)
                .with("p99_ms", latency.p99_ms),
        );

    // crates/bench/ -> repository root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ext_serve.json");
    std::fs::write(path, doc.render().expect("render ext_serve JSON"))
        .expect("write BENCH_ext_serve.json");
    eprintln!("wrote {path}");

    // Acceptance gates (ext_serve::measure_ratio already asserted the
    // batched answers bit-identical to the sequential ones in-run).
    let mut verdicts: Vec<String> = Vec::new();
    let mut check = |name: &str, value: Option<f64>, floor: f64| match value {
        Some(v) => {
            assert!(
                v >= floor,
                "acceptance gate failed: {name} {v:.2} < {floor} floor"
            );
            verdicts.push(format!("{name} {v:.2} >= {floor}"));
        }
        None => {
            eprintln!("acceptance gate SKIPPED: {name} (size not measured under --quick)");
            verdicts.push(format!("{name} skipped"));
        }
    };
    let ratio_at = |n: usize| {
        samples
            .iter()
            .find(|s| s.n == n)
            .map(ServeSample::batched_vs_sequential)
    };
    check("batched over sequential at N=16384", ratio_at(16_384), 2.0);
    check("batched over sequential at N=65536", ratio_at(65_536), 2.0);
    check(
        "SDH-heavy batched over sequential at N=16384",
        Some(sdh[0].batched_vs_sequential()),
        2.0,
    );
    check(
        "gridded batched over sequential at N=16384",
        Some(gridded[0].batched_vs_sequential()),
        2.0,
    );
    check(
        "shard cache hit rate",
        Some(samples[0].stats.cache_hit_rate()),
        0.5,
    );
    eprintln!("acceptance gates: {}", verdicts.join("; "));
}
