//! Regenerate the paper's Figure 4 (SDH kernels vs the CPU baseline).
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write `fig4.json`.
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::fig4;
use tbs_bench::report;
use tbs_cpu::CpuModel;
use tbs_datagen::paper_sweep;

fn main() {
    let cfg = DeviceConfig::titan_x();
    let cpu = CpuModel::xeon_e5_2640_v2();
    report::emit_result(fig4::build_report(&paper_sweep(10, 1024), &cfg, &cpu));
}
