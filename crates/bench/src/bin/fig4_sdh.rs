//! Regenerate the paper's Figure 4 (SDH kernels vs the CPU baseline).
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::fig4;
use tbs_cpu::CpuModel;
use tbs_datagen::paper_sweep;

fn main() {
    let cfg = DeviceConfig::titan_x();
    let cpu = CpuModel::xeon_e5_2640_v2();
    print!("{}", fig4::report(&paper_sweep(10, 1024), &cfg, &cpu));
}
