//! Regenerate the paper's Figure 9 (shuffle-instruction tiling).
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::fig9;
use tbs_cpu::CpuModel;
use tbs_datagen::paper_sweep;

fn main() {
    let cfg = DeviceConfig::titan_x();
    let cpu = CpuModel::xeon_e5_2640_v2();
    print!("{}", fig9::report(&paper_sweep(10, 1024), &cfg, &cpu));
}
