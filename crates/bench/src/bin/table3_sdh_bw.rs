//! Regenerate the paper's Table III (SDH achieved memory bandwidth).
use gpu_sim::DeviceConfig;
use tbs_bench::experiments::tables;

fn main() {
    print!(
        "{}",
        tables::table3_report(512 * 1024, &DeviceConfig::titan_x())
    );
}
