//! Extension study: the kernel family across GPU generations.
use tbs_bench::experiments::ext_arch;

fn main() {
    print!("{}", ext_arch::report(512 * 1024));
}
