//! Extension study: the kernel family across GPU generations.
//! Pass `--json DIR` (or set `TBS_REPORT_DIR`) to also write `ext_arch.json`.
use tbs_bench::experiments::ext_arch;
use tbs_bench::report;

fn main() {
    report::emit_result(ext_arch::build_report(512 * 1024));
}
