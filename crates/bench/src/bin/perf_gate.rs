//! CI perf-regression gate for the experiment harness.
//!
//! Re-runs a reduced-size sweep of the model, functional, and host
//! experiment groups, extracts the gate metrics (see
//! `report::gate::gate_groups`), and diffs them against the committed
//! baselines under `results/baseline/`. Any metric outside its
//! tolerance band — or missing entirely — prints a delta table and
//! makes the process exit non-zero.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tbs-bench --bin perf_gate               # check against baselines
//! cargo run --release -p tbs-bench --bin perf_gate -- --bless    # rewrite baselines
//! cargo run --release -p tbs-bench --bin perf_gate -- --skip-host  # model+functional only
//! ```
//!
//! `--bless` refuses to write a baseline whose measured value already
//! violates a hard invariant band, so a regression cannot be blessed
//! into the committed reference. Pass `--json DIR` (or set
//! `TBS_REPORT_DIR`) to mirror every underlying report as JSON; on a
//! gate run the reports are always also written to `target/perf-gate/`
//! so CI can upload them as artifacts.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use tbs_bench::report::gate::{
    self, baseline_dir, delta_table, evaluate, metric_map, violations, Baseline, GateGroup,
    GroupKind,
};
use tbs_bench::report::{self, Metric, Report, ReportError};

fn build_group(group: &GateGroup) -> Result<Vec<Report>, ReportError> {
    match group.kind {
        GroupKind::Model => gate::model_reports(),
        GroupKind::Functional => gate::functional_reports(),
        GroupKind::Host => gate::host_reports(),
    }
}

/// Directory where the gate mirrors every report so CI can upload the
/// raw JSON as an artifact when the gate fails.
fn artifact_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/perf-gate"
    ))
}

fn write_reports(reports: &[Report], dir: &PathBuf) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("perf_gate: cannot create {}: {e}", dir.display());
        return;
    }
    for rep in reports {
        if let Err(e) = rep.write_json(dir) {
            eprintln!("perf_gate: cannot write {}.json: {e}", rep.name);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    let skip_host = args.iter().any(|a| a == "--skip-host");

    let dir = baseline_dir();
    let artifacts = artifact_dir();
    let mut failed = false;

    for group in gate::gate_groups() {
        if skip_host && group.kind == GroupKind::Host {
            println!("== group `{}`: skipped (--skip-host)", group.name);
            continue;
        }
        println!(
            "== group `{}` ({} metrics): running reduced sweep...",
            group.name,
            group.specs.len()
        );
        let reports = match build_group(group) {
            Ok(reports) => reports,
            Err(e) => {
                eprintln!("perf_gate: group `{}` failed to build: {e}", group.name);
                failed = true;
                continue;
            }
        };
        write_reports(&reports, &artifacts);
        if let Some(json) = report::json_dir() {
            write_reports(&reports, &json);
        }
        let metrics: BTreeMap<String, Metric> = metric_map(&reports);

        if bless {
            match Baseline::bless(group, &metrics) {
                Ok(baseline) => match baseline.write(&dir) {
                    Ok(path) => println!("   blessed {} -> {}", group.name, path.display()),
                    Err(e) => {
                        eprintln!("perf_gate: cannot write baseline `{}`: {e}", group.name);
                        failed = true;
                    }
                },
                Err(e) => {
                    eprintln!("perf_gate: refusing to bless `{}`: {e}", group.name);
                    failed = true;
                }
            }
            continue;
        }

        let baseline = match Baseline::load(&dir, group.name) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "perf_gate: cannot load baseline `{}` (run with --bless?): {e}",
                    group.name
                );
                failed = true;
                continue;
            }
        };
        let verdicts = evaluate(&baseline, &metrics);
        let bad = violations(&verdicts);
        if bad == 0 {
            println!("   OK: {} metrics within tolerance", verdicts.len());
        } else {
            failed = true;
            println!(
                "   FAIL: {bad}/{} metrics outside tolerance:",
                verdicts.len()
            );
            print!("{}", delta_table(&verdicts));
        }
    }

    if failed {
        eprintln!();
        eprintln!("perf_gate: FAILED — see delta tables above.");
        eprintln!(
            "perf_gate: raw reports mirrored to {} for artifact upload.",
            artifacts.display()
        );
        ExitCode::FAILURE
    } else {
        println!();
        println!("perf_gate: all groups within tolerance.");
        ExitCode::SUCCESS
    }
}
