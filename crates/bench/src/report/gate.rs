//! The perf-regression gate: tolerance-banded baselines for every
//! experiment metric, checked by CI on each PR.
//!
//! ## How it fits together
//!
//! * Each experiment's `build_report` emits named [`Metric`]s (speedup
//!   geomeans, utilizations, contention ratios, host throughput).
//! * [`gate_groups`] declares, **in code**, which metrics are gated and
//!   with what [`Band`] — relative tolerance around the blessed value,
//!   hard floors for paper-shape invariants ("Register-SHM beats Naive
//!   by ≥ 4× at saturated N"), hard ceilings for "must not exceed"
//!   claims ("SHM-SHM ≤ Register-SHM").
//! * `perf_gate --bless` measures the canonical reduced-size sweep and
//!   writes `results/baseline/{model,functional,host}.json`, each check
//!   carrying its blessed value and the *resolved* `[min, max]` band.
//! * `perf_gate` (CI) re-measures and [`evaluate`]s: any metric outside
//!   its band — or missing entirely — is a violation; the delta table
//!   names it and the process exits non-zero.
//!
//! ## Why three baseline files
//!
//! The groups differ in determinism, which dictates their tolerances:
//!
//! * **model** — closed-form analytic profiles through the timing
//!   model: pure f64 arithmetic, bit-reproducible everywhere. Bands are
//!   tight (±10–20 %) and exist only to absorb deliberate model
//!   retunes; any drift is a real change to predicted performance.
//! * **functional** — seeded simulator runs: deterministic, but small
//!   (CI-sized) workloads, so bands guard shape invariants rather than
//!   exact times.
//! * **host** — wall-clock throughput of the interpreter itself (the
//!   PR-2 fast paths). Machine-dependent, so only generous floors: they
//!   catch a 2× interpreter regression, not a 5 % one.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use super::{arr_field, str_field, Metric, Report, ReportError, SCHEMA_VERSION};
use crate::experiments::*;
use crate::table::Table;
use gpu_sim::DeviceConfig;
use tbs_cpu::CpuModel;
use tbs_datagen::paper_sweep;
use tbs_json::Json;

/// Document-type tag for baseline files.
pub const BASELINE_KIND: &str = "tbs-bench/baseline";

// ---------------------------------------------------------------------
// bands & specs
// ---------------------------------------------------------------------

/// Tolerance policy for one gated metric. The *resolved* band is the
/// intersection of the relative window around the blessed value and the
/// hard limits, so an invariant floor can never be relaxed by blessing
/// a lucky measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Relative tolerance around the blessed value (0.15 = ±15 %).
    pub rel: Option<f64>,
    /// Hard floor (paper-shape invariant).
    pub hard_min: Option<f64>,
    /// Hard ceiling.
    pub hard_max: Option<f64>,
}

impl Band {
    pub const fn rel(rel: f64) -> Band {
        Band {
            rel: Some(rel),
            hard_min: None,
            hard_max: None,
        }
    }

    pub const fn min(hard_min: f64) -> Band {
        Band {
            rel: None,
            hard_min: Some(hard_min),
            hard_max: None,
        }
    }

    pub const fn max(hard_max: f64) -> Band {
        Band {
            rel: None,
            hard_min: None,
            hard_max: Some(hard_max),
        }
    }

    pub const fn range(hard_min: f64, hard_max: f64) -> Band {
        Band {
            rel: None,
            hard_min: Some(hard_min),
            hard_max: Some(hard_max),
        }
    }

    /// Relative window plus a hard floor.
    pub const fn rel_min(rel: f64, hard_min: f64) -> Band {
        Band {
            rel: Some(rel),
            hard_min: Some(hard_min),
            hard_max: None,
        }
    }

    /// Resolve to concrete `[min, max]` limits around a blessed value.
    pub fn resolve(&self, value: f64) -> (Option<f64>, Option<f64>) {
        let (mut lo, mut hi) = (self.hard_min, self.hard_max);
        if let Some(rel) = self.rel {
            let rlo = value - value.abs() * rel;
            let rhi = value + value.abs() * rel;
            lo = Some(lo.map_or(rlo, |h| h.max(rlo)));
            hi = Some(hi.map_or(rhi, |h| h.min(rhi)));
        }
        (lo, hi)
    }
}

/// One gated metric: its fully-qualified id (`<report>.<metric>`) and
/// tolerance policy.
#[derive(Debug, Clone, Copy)]
pub struct GateSpec {
    pub metric: &'static str,
    pub band: Band,
}

const fn spec(metric: &'static str, band: Band) -> GateSpec {
    GateSpec { metric, band }
}

/// Which measurement pipeline produces a group's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// Closed-form analytic model — bit-reproducible.
    Model,
    /// Seeded functional simulation — deterministic, CI-sized.
    Functional,
    /// Wall-clock host throughput — machine-dependent floors only.
    Host,
}

/// A baseline file's worth of gated metrics.
#[derive(Debug, Clone, Copy)]
pub struct GateGroup {
    pub name: &'static str,
    pub kind: GroupKind,
    pub specs: &'static [GateSpec],
}

/// Every gated metric, grouped by baseline file. This table — not the
/// baseline JSON — is the source of truth for *which* metrics are
/// gated and their hard invariants; the JSON records blessed values and
/// resolved bands.
pub fn gate_groups() -> &'static [GateGroup] {
    const MODEL: &[GateSpec] = &[
        // Figure 2 — 2-PCF speedups over Naive at saturated N.
        spec("fig2.speedup.shm_shm.geomean_saturated", Band::rel(0.15)),
        spec(
            "fig2.speedup.register_shm.geomean_saturated",
            Band::rel_min(0.15, 4.0),
        ),
        spec(
            "fig2.speedup.register_roc.geomean_saturated",
            Band::rel(0.15),
        ),
        // Paper-shape invariant: Register-SHM ≥ 4× Naive at every
        // saturated size, not just on average.
        spec(
            "fig2.invariant.register_shm_min_saturated",
            Band::rel_min(0.15, 4.0),
        ),
        // Paper-shape invariant: SHM-SHM never beats Register-SHM.
        spec("fig2.invariant.shm_over_register_shm_max", Band::max(1.01)),
        // Figure 4 — SDH privatization.
        spec("fig4.privatization_gain.at_max_n", Band::rel_min(0.2, 5.0)),
        spec("fig4.best_gpu_over_cpu.at_max_n", Band::rel_min(0.2, 25.0)),
        spec(
            "fig4.register_shm_over_cpu.at_max_n",
            Band::rel_min(0.2, 1.5),
        ),
        // Figure 5 — occupancy steps & contention at tiny outputs.
        spec("fig5.occupancy_plateaus", Band::min(3.0)),
        spec(
            "fig5.time_ratio.buckets5000_over_1000",
            Band::rel_min(0.2, 1.0),
        ),
        spec("fig5.time_ratio.buckets16_over_1000", Band::min(1.0)),
        // Figure 7 — load-balanced intra loop, the paper's 12–13 % win.
        spec("fig7.lb_speedup.geomean", Band::range(1.03, 1.25)),
        // Figure 9 — shuffle tiling competitive with cache tiling.
        spec("fig9.shuffle_over_best_cache.max", Band::max(1.6)),
        spec("fig9.speedup_over_cpu.min", Band::rel_min(0.2, 15.0)),
        // Tables II–IV — profiler-shape claims.
        spec("table2.naive.arithmetic_utilization", Band::max(0.35)),
        spec(
            "table2.reg_shm.arithmetic_utilization",
            Band::rel_min(0.15, 0.4),
        ),
        spec("table2.naive.memory_is_l2", Band::min(1.0)),
        spec(
            "table3.reg_shm_out.shared_gbps",
            Band::rel_min(0.25, 1500.0),
        ),
        spec("table4.reg_shm_out.shared_is_bottleneck", Band::min(1.0)),
        spec(
            "table4.reg_roc_out.roc_utilization",
            Band::rel_min(0.25, 0.2),
        ),
        // Extension studies (closed-form parts).
        spec(
            "ext_arch.tiling_gain.min_across_devices",
            Band::rel_min(0.2, 1.5),
        ),
        spec("ext_arch.best_time_ratio.fermi_over_kepler", Band::min(1.0)),
        spec(
            "ext_arch.best_time_ratio.kepler_over_maxwell",
            Band::min(1.0),
        ),
        spec("ext_blocksize.b1024_over_best", Band::max(1.1)),
        spec("ext_multigpu_predicted.speedup.4dev", Band::range(3.0, 4.2)),
    ];
    const FUNCTIONAL: &[GateSpec] = &[
        spec(
            "ext_skew.contention_ratio.tightest_over_uniform",
            Band::rel_min(0.25, 1.5),
        ),
        spec("ext_skew.uniform_contention", Band::max(2.5)),
        spec("ext_type3.serial_ratio.dense", Band::rel_min(0.25, 4.0)),
        spec("ext_type3.agg_speedup.dense", Band::min(1.0)),
        spec(
            "ext_multicopy.contention_ratio.copies1_over_4",
            Band::rel_min(0.25, 1.33),
        ),
        spec("ext_multigpu.speedup.2dev", Band::min(1.4)),
        spec("ext_multigpu.speedup.4dev_over_2dev", Band::min(1.0)),
        // Fused Type-II output stage — shape invariants (deterministic):
        // every half-pair bins exactly once, the closed-form scatter
        // accounting reproduces the op-by-op atomic serialization, and
        // the packed Figure-3 reduction engages.
        spec("ext_fusedout.hist_total_over_pairs", Band::range(1.0, 1.0)),
        spec(
            "ext_fusedout.scatter_contention_parity",
            Band::range(1.0, 1.0),
        ),
        spec("ext_fusedout.fused_coverage", Band::min(0.5)),
        spec("ext_fusedout.reduce_fused_ops", Band::min(1.0)),
        // Landy–Szalay pipeline over the gridded executor — exact
        // pair-mass conservation (a lost or doubled pair anywhere in
        // the spatial front end shifts these off 1.0), plus the
        // estimator's shape: the blob catalog must correlate strongly
        // at short range and the uniform control must not.
        spec("ext_ls.dd_mass_over_expected", Band::range(1.0, 1.0)),
        spec("ext_ls.dr_mass_over_expected", Band::range(1.0, 1.0)),
        spec("ext_ls.rr_mass_over_expected", Band::range(1.0, 1.0)),
        spec("ext_ls.xi_clustered_peak", Band::rel_min(0.5, 5.0)),
        spec("ext_ls.xi_uniform_tail_absmax", Band::max(0.5)),
    ];
    const HOST: &[GateSpec] = &[
        // Wall-clock floors — deliberately ~2× under the slowest
        // observed CI-class machine, so they trip on an interpreter
        // regression of PR 2's fast paths, not on scheduler noise.
        spec("sim_hotpath.speedup.n16384", Band::min(1.3)),
        spec("sim_hotpath.lane_ops_per_s.n16384", Band::min(5e6)),
        // Fused tile passes must stay a genuine multiplier over the
        // op-by-op vectorized route (the PR's ≥2× claim, floored well
        // below the ~3–4× observed so only a real regression trips it).
        spec("sim_hotpath.fused_vs_vectorized.n16384", Band::min(2.0)),
        // The Type-II (SDH) counterpart: the fused output stage —
        // vectorized bucketing, closed-form scatter accounting, batched
        // ROC probes and the packed reduction — must also stay a ≥2×
        // multiplier over the op-by-op vectorized route.
        spec("sim_hotpath.fused_vs_vectorized_sdh.n16384", Band::min(2.0)),
        // Deterministic interpreter statistics (not wall-clock): most
        // useful lane work must flow through fused passes on the fig2
        // workload, and the ROC/L2 memo must actually replay.
        spec("sim_hotpath.fused_coverage.n16384", Band::min(0.5)),
        // The plan-compiled route must stay a genuine multiplier over
        // the fused route on the Type-I hot path (the PR's ≥3× claim).
        spec("sim_hotpath.compiled_vs_fused.n16384", Band::min(3.0)),
        // On the Type-II (SDH) workload the compiled route lowers the
        // histogram sink itself — fused distance+bucket rows (the
        // vectorized magic-number floor) feeding the closed-form
        // windowed scatter accounting — plus the packed Figure-3
        // reduction, so it must stay a genuine multiplier over the
        // fused route (~2.7× observed; floored at the PR's ≥2× claim).
        spec("sim_hotpath.compiled_vs_fused_sdh.n16384", Band::min(2.0)),
        // The parallel block executor is the benched default; on
        // single-core hosts it degenerates to the sequential path, so
        // this is a no-regression floor, not a scaling claim.
        spec("sim_hotpath.parallel_vs_sequential.n16384", Band::min(0.8)),
        // Most useful lane work must flow through compiled passes on
        // the fig2 workload (deterministic, not wall-clock, so the
        // floor can sit just under the 0.93 measured: with the output
        // stage lowered, any pass falling back to fused shows up here).
        spec("sim_hotpath.compiled_coverage.n16384", Band::min(0.9)),
        // Spatial front end — the headline sub-quadratic claim: the
        // grid route must beat the (anchor-projected) all-pairs route
        // ≥10× at N = 1048576. Machine-dependent, hence a generous
        // floor well under the ~16× observed.
        spec("sim_gridpath.grid_vs_allpairs.n1048576", Band::min(10.0)),
        // Deterministic cull geometry (not wall-clock): the
        // min-distance cull must discard ≥90 % of the pair mass at
        // N = 262144 with the reference r_max.
        spec("sim_gridpath.pruned_pair_fraction.n262144", Band::min(0.9)),
        // Launch packing: mapping every candidate cell pair onto one
        // segmented launch per (population class, 4096-block chunk)
        // must stay a genuine multiplier over one launch per cell pair
        // on the same catalog (~4× observed at N = 262144; floored at
        // the PR's ≥2× claim).
        spec("sim_gridpath.packed_vs_unpacked.n262144", Band::min(2.0)),
        // The SpatialPlan analytic model's pick must match the measured
        // winner at both gate sizes (1.0 = agrees; deterministic given
        // the measured wall-clocks — a mispriced per-launch floor shows
        // up here, the regression this band exists for).
        spec("sim_gridpath.model_agreement.n262144", Band::min(1.0)),
        spec("sim_gridpath.model_agreement.n1048576", Band::min(1.0)),
        // Query-service SLO bands (extension). Coalescing k = 12
        // same-dataset queries into one multi-consumer sweep must stay
        // a genuine multiplier over one-at-a-time serving (the PR's
        // ≥2× claim at the acceptance size, asserted bit-identical
        // in-run; gated at the reduced size like the hotpath bands).
        spec("ext_serve.batched_vs_sequential.n16384", Band::min(2.0)),
        // The SDH-heavy mix must coalesce too: identical-spec histogram
        // sinks dedup at admission and the compiled multi-consumer
        // sweep serves what remains (~4–5× observed; floored at ≥2×).
        spec("ext_serve.batched_vs_sequential_sdh.n16384", Band::min(2.0)),
        // A burst of gridded count-withins must coalesce into one
        // packed multi-radius sweep over a shared covering catalog
        // instead of paying one sweep + covering-grid build per query
        // (floored at ≥2× like the other coalescing legs).
        spec(
            "ext_serve.batched_vs_sequential_gridded.n16384",
            Band::min(2.0),
        ),
        // Single-query round-trip ceiling at CI size (p99 over 40
        // probes, cold shard upload included). Wall-clock, so the
        // ceiling sits ~5× over the slowest observed CI-class run —
        // it trips on a dispatcher/cache regression, not on noise.
        spec("ext_serve.p99_latency_ms.n4096", Band::max(2_000.0)),
        // The shard-upload cache must replay most probes across the
        // throughput leg (deterministic: 12 hits / 14 probes with the
        // 2-worker layout); repeat queries must never re-upload.
        spec("ext_serve.cache_hit_rate", Band::min(0.5)),
    ];
    const GROUPS: &[GateGroup] = &[
        GateGroup {
            name: "model",
            kind: GroupKind::Model,
            specs: MODEL,
        },
        GateGroup {
            name: "functional",
            kind: GroupKind::Functional,
            specs: FUNCTIONAL,
        },
        GateGroup {
            name: "host",
            kind: GroupKind::Host,
            specs: HOST,
        },
    ];
    GROUPS
}

// ---------------------------------------------------------------------
// canonical reduced-size sweeps
// ---------------------------------------------------------------------

/// The reduced sweep the gate runs (6 log-spaced sizes instead of the
/// full 10 — still reaching the saturated ≥ 400 K regime the paper's
/// claims are about).
pub fn gate_sweep() -> Vec<u32> {
    paper_sweep(6, 1024)
}

/// Build every model-group report (closed-form; milliseconds of work).
pub fn model_reports() -> Result<Vec<Report>, ReportError> {
    let cfg = DeviceConfig::titan_x();
    let cpu = CpuModel::xeon_e5_2640_v2();
    let sweep = gate_sweep();
    Ok(vec![
        fig2::build_report(&sweep, &cfg)?,
        fig4::build_report(&sweep, &cfg, &cpu)?,
        fig5::build_report(fig5::FIG5_N, &cfg)?,
        fig7::build_report(&cfg)?,
        fig9::build_report(&sweep, &cfg, &cpu)?,
        tables::build_table2_report(512 * 1024, &cfg)?,
        tables::build_table3_report(512 * 1024, &cfg)?,
        tables::build_table4_report(512 * 1024, &cfg)?,
        ext_arch::build_report(512 * 1024)?,
        ext_blocksize::build_report(512 * 1024, &cfg)?,
        ext_multigpu::build_predicted_report(2_000_896, &cfg)?,
    ])
}

/// Build every functional-group report at CI-sized workloads (a few
/// seconds of simulation, deterministic by seed).
pub fn functional_reports() -> Result<Vec<Report>, ReportError> {
    Ok(vec![
        ext_skew::build_report(1024, 256, 64)?,
        ext_type3::build_report(768, 64)?,
        ext_multicopy::build_report(1024, 128)?,
        ext_multigpu::build_report(2048, 64)?,
        ext_fusedout::build_report(1024, 128, 64)?,
        ext_ls::build_report(768, 2048, 8)?,
    ])
}

/// Build the host-throughput reports at the gate's reduced sizes: the
/// interpreter hot path, plus the grid-vs-all-pairs sweep (small
/// anchor, no CPU oracle — the differential suite owns exactness).
pub fn host_reports() -> Result<Vec<Report>, ReportError> {
    Ok(vec![
        hotpath::build_report(&[16_384])?,
        gridpath::build_report(&[262_144, 1_048_576], &gridpath::GridpathConfig::gate())?,
        ext_serve::build_report(&[16_384], &[16_384], 4_096)?,
    ])
}

/// Flatten reports into `"<report>.<metric>" → Metric`.
pub fn metric_map(reports: &[Report]) -> BTreeMap<String, Metric> {
    let mut map = BTreeMap::new();
    for r in reports {
        for m in &r.metrics {
            let prev = map.insert(format!("{}.{}", r.name, m.id), m.clone());
            assert!(prev.is_none(), "duplicate metric {}.{}", r.name, m.id);
        }
    }
    map
}

// ---------------------------------------------------------------------
// baselines
// ---------------------------------------------------------------------

/// One banded check inside a committed baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    pub metric: String,
    /// The blessed (committed) measurement.
    pub value: f64,
    pub unit: String,
    pub min: Option<f64>,
    pub max: Option<f64>,
}

/// A committed baseline document: the blessed checks for one group.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    pub name: String,
    pub checks: Vec<Check>,
}

impl Baseline {
    /// Bless a group from fresh measurements: every gated metric must
    /// be present and finite, and the blessed value must itself sit
    /// inside the resolved band (otherwise the code's hard invariants
    /// disagree with reality and committing would be meaningless).
    pub fn bless(
        group: &GateGroup,
        measured: &BTreeMap<String, Metric>,
    ) -> Result<Baseline, ReportError> {
        let mut checks = Vec::new();
        for s in group.specs {
            let m = measured.get(s.metric).ok_or_else(|| {
                ReportError::Schema(format!(
                    "cannot bless `{}`: metric `{}` was not produced by the gate sweep",
                    group.name, s.metric
                ))
            })?;
            let (min, max) = s.band.resolve(m.value);
            let ok = min.is_none_or_at_most(m.value) && max.is_none_or_at_least(m.value);
            if !ok {
                return Err(ReportError::Schema(format!(
                    "cannot bless `{}`: measured {} = {} violates its own hard band [{}, {}]",
                    group.name,
                    s.metric,
                    m.value,
                    fmt_opt(min),
                    fmt_opt(max),
                )));
            }
            checks.push(Check {
                metric: s.metric.to_string(),
                value: m.value,
                unit: m.unit.clone(),
                min,
                max,
            });
        }
        Ok(Baseline {
            name: group.name.to_string(),
            checks,
        })
    }

    pub fn to_json(&self) -> Result<Json, ReportError> {
        let mut checks = Vec::new();
        for c in &self.checks {
            let mut j = Json::obj()
                .with("metric", c.metric.as_str())
                .with("value", c.value)
                .with("unit", c.unit.as_str());
            if let Some(min) = c.min {
                j.push("min", min);
            }
            if let Some(max) = c.max {
                j.push("max", max);
            }
            checks.push(j);
        }
        let j = Json::obj()
            .with("schema", SCHEMA_VERSION)
            .with("kind", BASELINE_KIND)
            .with("name", self.name.as_str())
            .with("checks", Json::Arr(checks));
        j.render()?; // validate (non-finite bands etc.)
        Ok(j)
    }

    pub fn from_json(j: &Json) -> Result<Baseline, ReportError> {
        let schema = j
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| ReportError::Schema("baseline missing `schema`".into()))?;
        if schema != SCHEMA_VERSION as u64 {
            return Err(ReportError::Schema(format!(
                "baseline schema {schema} != supported {SCHEMA_VERSION}"
            )));
        }
        let kind = str_field(j, "baseline", "kind")?;
        if kind != BASELINE_KIND {
            return Err(ReportError::Schema(format!(
                "kind `{kind}` is not `{BASELINE_KIND}`"
            )));
        }
        let mut checks = Vec::new();
        for c in arr_field(j, "baseline", "checks")? {
            let value = c
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| ReportError::Schema("check missing `value`".into()))?;
            let band = |key: &str| -> Result<Option<f64>, ReportError> {
                match c.get(key) {
                    None => Ok(None),
                    Some(v) => v
                        .as_f64()
                        .map(Some)
                        .ok_or_else(|| ReportError::Schema(format!("check `{key}` not a number"))),
                }
            };
            checks.push(Check {
                metric: str_field(c, "check", "metric")?,
                value,
                unit: str_field(c, "check", "unit")?,
                min: band("min")?,
                max: band("max")?,
            });
        }
        Ok(Baseline {
            name: str_field(j, "baseline", "name")?,
            checks,
        })
    }

    /// Load `<dir>/<name>.json`.
    pub fn load(dir: &Path, name: &str) -> Result<Baseline, ReportError> {
        let path = dir.join(format!("{name}.json"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ReportError::Io(format!("{}: {e}", path.display())))?;
        Baseline::from_json(&Json::parse(&text)?)
    }

    /// Write `<dir>/<name>.json`.
    pub fn write(&self, dir: &Path) -> Result<PathBuf, ReportError> {
        std::fs::create_dir_all(dir).map_err(|e| ReportError::Io(format!("{dir:?}: {e}")))?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json()?.render()?)
            .map_err(|e| ReportError::Io(format!("{}: {e}", path.display())))?;
        Ok(path)
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("-inf/inf".to_string(), |v| format!("{v:.4}"))
}

/// `Option<f64>` band-limit helpers (None = unbounded).
trait BandLimit {
    fn is_none_or_at_most(&self, v: f64) -> bool;
    fn is_none_or_at_least(&self, v: f64) -> bool;
}

impl BandLimit for Option<f64> {
    /// True when this lower limit admits `v`.
    fn is_none_or_at_most(&self, v: f64) -> bool {
        self.is_none_or(|lo| lo <= v)
    }
    /// True when this upper limit admits `v`.
    fn is_none_or_at_least(&self, v: f64) -> bool {
        self.is_none_or(|hi| v <= hi)
    }
}

// ---------------------------------------------------------------------
// evaluation
// ---------------------------------------------------------------------

/// The outcome of checking one baseline metric against a fresh run.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    pub metric: String,
    pub unit: String,
    pub baseline: f64,
    /// `None` — the gate sweep no longer produces this metric at all.
    pub measured: Option<f64>,
    pub min: Option<f64>,
    pub max: Option<f64>,
    pub ok: bool,
}

/// Check every baseline metric against fresh measurements. A metric
/// that disappeared from the sweep is a violation — deleting a
/// regression's metric must not silence the gate.
pub fn evaluate(baseline: &Baseline, measured: &BTreeMap<String, Metric>) -> Vec<Verdict> {
    baseline
        .checks
        .iter()
        .map(|c| {
            let m = measured.get(&c.metric);
            let ok = match m {
                None => false,
                Some(m) => c.min.is_none_or_at_most(m.value) && c.max.is_none_or_at_least(m.value),
            };
            Verdict {
                metric: c.metric.clone(),
                unit: c.unit.clone(),
                baseline: c.value,
                measured: m.map(|m| m.value),
                min: c.min,
                max: c.max,
                ok,
            }
        })
        .collect()
}

/// Render verdicts as a human-readable delta table. Violations sort
/// first so the failure cause tops the CI log.
pub fn delta_table(verdicts: &[Verdict]) -> String {
    let mut sorted: Vec<&Verdict> = verdicts.iter().collect();
    sorted.sort_by_key(|v| (v.ok, v.metric.clone()));
    let mut t = Table::new(&["metric", "baseline", "current", "delta", "band", "status"]);
    for v in sorted {
        let fmt = |x: f64| {
            if x.abs() >= 1e-3 && x.abs() < 1e7 {
                format!("{x:.4}")
            } else {
                format!("{x:.3e}")
            }
        };
        let current = v.measured.map_or("MISSING".to_string(), fmt);
        let delta = match v.measured {
            Some(m) if v.baseline != 0.0 => format!("{:+.1}%", (m / v.baseline - 1.0) * 100.0),
            _ => "-".to_string(),
        };
        let band = format!(
            "[{}, {}]",
            v.min.map_or("-inf".to_string(), &fmt),
            v.max.map_or("inf".to_string(), &fmt)
        );
        t.row(&[
            v.metric.clone(),
            fmt(v.baseline),
            current,
            delta,
            band,
            if v.ok {
                "ok".into()
            } else {
                "VIOLATION".into()
            },
        ]);
    }
    t.render()
}

/// Count failed verdicts.
pub fn violations(verdicts: &[Verdict]) -> usize {
    verdicts.iter().filter(|v| !v.ok).count()
}

/// The committed baseline directory (`results/baseline/` at the repo
/// root), resolved relative to this crate so bins and tests agree.
pub fn baseline_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/baseline")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(id: &str, value: f64) -> (String, Metric) {
        (
            id.to_string(),
            Metric {
                id: id.to_string(),
                value,
                unit: "x".to_string(),
            },
        )
    }

    #[test]
    fn band_resolution_intersects_rel_and_hard_limits() {
        let (lo, hi) = Band::rel(0.1).resolve(10.0);
        assert_eq!((lo, hi), (Some(9.0), Some(11.0)));
        // The hard floor wins over the looser relative floor.
        let (lo, hi) = Band::rel_min(0.5, 8.0).resolve(10.0);
        assert_eq!((lo, hi), (Some(8.0), Some(15.0)));
        // The relative floor wins when it is tighter than the hard one.
        let (lo, _) = Band::rel_min(0.1, 2.0).resolve(10.0);
        assert_eq!(lo, Some(9.0));
        let (lo, hi) = Band::max(1.01).resolve(0.97);
        assert_eq!((lo, hi), (None, Some(1.01)));
    }

    #[test]
    fn bless_then_evaluate_round_trips() {
        const SPECS: &[GateSpec] = &[spec("g.a", Band::rel(0.1)), spec("g.b", Band::min(2.0))];
        let group = GateGroup {
            name: "g",
            kind: GroupKind::Model,
            specs: SPECS,
        };
        let measured: BTreeMap<_, _> = [metric("g.a", 5.0), metric("g.b", 3.0)].into();
        let baseline = Baseline::bless(&group, &measured).unwrap();
        // Same measurements pass.
        assert_eq!(violations(&evaluate(&baseline, &measured)), 0);
        // JSON round trip preserves everything.
        let text = baseline.to_json().unwrap().render().unwrap();
        let back = Baseline::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, baseline);
        // A degraded measurement violates.
        let degraded: BTreeMap<_, _> = [metric("g.a", 4.0), metric("g.b", 3.0)].into();
        let verdicts = evaluate(&baseline, &degraded);
        assert_eq!(violations(&verdicts), 1);
        assert!(delta_table(&verdicts).contains("VIOLATION"));
        // A missing metric violates too.
        let partial: BTreeMap<_, _> = [metric("g.a", 5.0)].into();
        let verdicts = evaluate(&baseline, &partial);
        assert_eq!(violations(&verdicts), 1);
        assert!(delta_table(&verdicts).contains("MISSING"));
    }

    #[test]
    fn bless_rejects_missing_and_invariant_violating_metrics() {
        const SPECS: &[GateSpec] = &[spec("g.a", Band::min(4.0))];
        let group = GateGroup {
            name: "g",
            kind: GroupKind::Model,
            specs: SPECS,
        };
        let empty = BTreeMap::new();
        assert!(Baseline::bless(&group, &empty).is_err());
        // Measured 3.0 is below the hard invariant floor 4.0 — blessing
        // must refuse rather than commit a self-violating baseline.
        let bad: BTreeMap<_, _> = [metric("g.a", 3.0)].into();
        assert!(Baseline::bless(&group, &bad).is_err());
    }

    #[test]
    fn gate_group_metrics_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for g in gate_groups() {
            for s in g.specs {
                assert!(seen.insert(s.metric), "duplicate gate metric {}", s.metric);
            }
        }
        assert!(
            seen.len() > 25,
            "expected a substantive gate: {}",
            seen.len()
        );
    }
}
