//! Structured, schema-versioned experiment reports.
//!
//! Every experiment in this crate produces a [`Report`]: the same
//! series/rows the paper plots, but as typed data instead of formatted
//! text. One report renders two ways —
//!
//! * [`Report::render`] — the human-readable tables the `src/bin/*`
//!   binaries print (and `results/all_experiments.txt` records);
//! * [`Report::to_json`] — a machine-checkable JSON document
//!   ([`SCHEMA_VERSION`]-stamped) that the CI perf gate
//!   ([`gate`], `src/bin/perf_gate.rs`) diffs against the committed
//!   baselines in `results/baseline/`.
//!
//! The JSON side embeds raw values (plus [`gpu_sim::KernelProfile`] /
//! [`gpu_sim::AccessTally`] snapshots where an experiment measures
//! them), so a regression in a kernel, the timing model or the
//! interpreter shows up as a numeric delta — not as a prose diff a
//! human has to notice.
//!
//! Error discipline: metrics **reject non-finite values at
//! construction** ([`Report::metric`]). A `geomean` of an empty series
//! is NaN, NaN has no JSON encoding, and a baseline with a silent NaN
//! hole would gate nothing — so the failure is loud and early, and the
//! JSON writer double-checks (`tbs_json` refuses non-finite numbers).

pub mod gate;

use std::fmt;
use std::path::{Path, PathBuf};

use crate::table::Table;
use gpu_sim::{AccessTally, KernelProfile};
use tbs_json::{Json, JsonError};

/// Version stamp written into every report and baseline document.
/// Bump on any backwards-incompatible change to the JSON layout; the
/// loader rejects mismatches instead of misreading old files.
pub const SCHEMA_VERSION: u32 = 1;

/// Document-type tag, so a report file can't be mistaken for a baseline
/// (and vice versa) by tools that only sniff the first fields.
pub const REPORT_KIND: &str = "tbs-bench/report";

/// Errors raised while building, encoding or decoding reports.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// A metric value was NaN or infinite (e.g. a geomean over an
    /// empty series) — rejected instead of propagated into JSON.
    NonFinite { id: String },
    /// A summary statistic was requested over an empty series.
    EmptySeries { what: String },
    /// Underlying JSON parse/render failure.
    Json(JsonError),
    /// Structurally valid JSON that does not match the report schema.
    Schema(String),
    /// Filesystem failure while reading/writing a report document.
    Io(String),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::NonFinite { id } => {
                write!(f, "metric `{id}` is non-finite (empty or invalid series?)")
            }
            ReportError::EmptySeries { what } => write!(f, "empty series for {what}"),
            ReportError::Json(e) => write!(f, "{e}"),
            ReportError::Schema(s) => write!(f, "schema error: {s}"),
            ReportError::Io(s) => write!(f, "io error: {s}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<JsonError> for ReportError {
    fn from(e: JsonError) -> Self {
        ReportError::Json(e)
    }
}

// ---------------------------------------------------------------------
// cells & tables
// ---------------------------------------------------------------------

/// One table cell: a raw value with its display form, or plain text.
/// Keeping the number next to its formatting lets the same table drive
/// both the rendered report and the machine-readable JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    Num { value: f64, text: String },
    Text(String),
}

impl Cell {
    /// Integer cell (sizes, counts).
    pub fn int(v: u64) -> Cell {
        Cell::Num {
            value: v as f64,
            text: v.to_string(),
        }
    }

    /// Seconds, formatted like the paper's tables (µs → s).
    pub fn secs(v: f64) -> Cell {
        Cell::Num {
            value: v,
            text: crate::table::fmt_secs(v),
        }
    }

    /// Speedup/ratio cell rendered as `5.5x`.
    pub fn x(v: f64) -> Cell {
        Cell::Num {
            value: v,
            text: crate::table::fmt_x(v),
        }
    }

    /// Ratio rendered with three decimals (`1.123x`).
    pub fn x3(v: f64) -> Cell {
        Cell::Num {
            value: v,
            text: format!("{v:.3}x"),
        }
    }

    /// Fraction rendered as a percentage.
    pub fn pct(v: f64) -> Cell {
        Cell::Num {
            value: v,
            text: crate::table::fmt_pct(v),
        }
    }

    /// Bandwidth rendered as GB/s / TB/s (raw value in GB/s).
    pub fn bw(gbps: f64) -> Cell {
        Cell::Num {
            value: gbps,
            text: crate::table::fmt_bw(gbps),
        }
    }

    /// Arbitrary numeric cell with custom display text.
    pub fn num(value: f64, text: impl Into<String>) -> Cell {
        Cell::Num {
            value,
            text: text.into(),
        }
    }

    /// Label/annotation cell.
    pub fn text(s: impl Into<String>) -> Cell {
        Cell::Text(s.into())
    }

    /// The display form (what the text tables print).
    pub fn display(&self) -> &str {
        match self {
            Cell::Num { text, .. } => text,
            Cell::Text(s) => s,
        }
    }

    fn to_json(&self) -> Json {
        match self {
            Cell::Num { value, text } => Json::obj().with("v", *value).with("t", text.as_str()),
            Cell::Text(s) => Json::obj().with("t", s.as_str()),
        }
    }

    fn from_json(j: &Json) -> Result<Cell, ReportError> {
        let text = j
            .get("t")
            .and_then(Json::as_str)
            .ok_or_else(|| ReportError::Schema("cell missing `t`".into()))?
            .to_string();
        match j.get("v") {
            Some(v) => Ok(Cell::Num {
                value: v
                    .as_f64()
                    .ok_or_else(|| ReportError::Schema("cell `v` not a number".into()))?,
                text,
            }),
            None => Ok(Cell::Text(text)),
        }
    }
}

/// A named series table: one x-column plus value columns, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesTable {
    /// Short identifier (`"times"`, `"speedups"`, …).
    pub name: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Cell>>,
}

impl SeriesTable {
    pub fn new(name: &str, columns: &[&str]) -> SeriesTable {
        SeriesTable {
            name: name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut SeriesTable {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in table `{}`",
            self.name
        );
        self.rows.push(cells);
        self
    }

    /// Render through the fixed-width [`Table`] builder.
    pub fn render(&self) -> String {
        let headers: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let mut t = Table::new(&headers);
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| c.display().to_string()).collect();
            t.row(&cells);
        }
        t.render()
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.as_str())
            .with(
                "columns",
                Json::Arr(
                    self.columns
                        .iter()
                        .map(|c| Json::from(c.as_str()))
                        .collect(),
                ),
            )
            .with(
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(Cell::to_json).collect()))
                        .collect(),
                ),
            )
    }

    fn from_json(j: &Json) -> Result<SeriesTable, ReportError> {
        let name = str_field(j, "table", "name")?;
        let columns = j
            .get("columns")
            .and_then(Json::as_arr)
            .ok_or_else(|| ReportError::Schema("table missing `columns`".into()))?
            .iter()
            .map(|c| {
                c.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ReportError::Schema("non-string column".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut rows = Vec::new();
        for row in j
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| ReportError::Schema("table missing `rows`".into()))?
        {
            let cells = row
                .as_arr()
                .ok_or_else(|| ReportError::Schema("row is not an array".into()))?
                .iter()
                .map(Cell::from_json)
                .collect::<Result<Vec<_>, _>>()?;
            if cells.len() != columns.len() {
                return Err(ReportError::Schema(format!(
                    "row width {} != column count {} in table `{name}`",
                    cells.len(),
                    columns.len()
                )));
            }
            rows.push(cells);
        }
        Ok(SeriesTable {
            name,
            columns,
            rows,
        })
    }
}

// ---------------------------------------------------------------------
// metrics
// ---------------------------------------------------------------------

/// A named scalar the perf gate can band-check. `unit` is a display
/// tag (`"x"`, `"s"`, `"ratio"`, `"ops/s"`, …), not a conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    pub id: String,
    pub value: f64,
    pub unit: String,
}

impl Metric {
    /// Construct a metric, rejecting NaN/±inf.
    pub fn checked(id: &str, value: f64, unit: &str) -> Result<Metric, ReportError> {
        if !value.is_finite() {
            return Err(ReportError::NonFinite { id: id.to_string() });
        }
        Ok(Metric {
            id: id.to_string(),
            value,
            unit: unit.to_string(),
        })
    }
}

// ---------------------------------------------------------------------
// the report
// ---------------------------------------------------------------------

/// A complete experiment report: tables for humans and artifacts,
/// metrics for the gate, optional profiler/tally snapshots for deep
/// diffing.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Machine identifier, also the JSON filename stem (`"fig2"`).
    pub name: String,
    /// Human title (first rendered line).
    pub title: String,
    /// Workload/device context, rendered in parentheses under the title.
    pub context: String,
    pub tables: Vec<SeriesTable>,
    pub metrics: Vec<Metric>,
    /// Labelled [`KernelProfile`] snapshots (Tables II–IV style).
    pub profiles: Vec<(String, KernelProfile)>,
    /// Whole-kernel [`AccessTally`] snapshot for functional runs.
    pub tally: Option<AccessTally>,
    /// Trailing prose: the paper's reported values and interpretation.
    pub notes: String,
}

impl Report {
    pub fn new(name: &str, title: &str) -> Report {
        Report {
            name: name.to_string(),
            title: title.to_string(),
            context: String::new(),
            tables: Vec::new(),
            metrics: Vec::new(),
            profiles: Vec::new(),
            tally: None,
            notes: String::new(),
        }
    }

    /// Builder-style context line.
    pub fn with_context(mut self, context: &str) -> Report {
        self.context = context.to_string();
        self
    }

    pub fn push_table(&mut self, t: SeriesTable) -> &mut Report {
        self.tables.push(t);
        self
    }

    /// Add a gate-checkable metric; fails on non-finite values (the
    /// empty-geomean NaN path ends here, loudly).
    pub fn metric(&mut self, id: &str, value: f64, unit: &str) -> Result<(), ReportError> {
        self.metrics.push(Metric::checked(id, value, unit)?);
        Ok(())
    }

    pub fn push_note(&mut self, note: &str) -> &mut Report {
        if !self.notes.is_empty() && !self.notes.ends_with('\n') {
            self.notes.push('\n');
        }
        self.notes.push_str(note);
        self
    }

    /// Look up a metric value by id.
    pub fn metric_value(&self, id: &str) -> Option<f64> {
        self.metrics.iter().find(|m| m.id == id).map(|m| m.value)
    }

    /// Render the human-readable report (what the bins print).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        if !self.context.is_empty() {
            out.push_str(&format!("({})\n", self.context));
        }
        for t in &self.tables {
            out.push('\n');
            out.push_str(&t.render());
        }
        if !self.metrics.is_empty() {
            out.push('\n');
            for m in &self.metrics {
                let v = if m.value.abs() >= 1e-3 && m.value.abs() < 1e7 {
                    format!("{:.4}", m.value)
                } else {
                    format!("{:.4e}", m.value)
                };
                out.push_str(&format!("  {} = {} {}\n", m.id, v, m.unit));
            }
        }
        if !self.notes.is_empty() {
            out.push('\n');
            out.push_str(&self.notes);
            if !self.notes.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }

    /// Encode as a schema-versioned JSON document.
    pub fn to_json(&self) -> Result<Json, ReportError> {
        let mut j = Json::obj()
            .with("schema", SCHEMA_VERSION)
            .with("kind", REPORT_KIND)
            .with("name", self.name.as_str())
            .with("title", self.title.as_str())
            .with("context", self.context.as_str())
            .with(
                "tables",
                Json::Arr(self.tables.iter().map(SeriesTable::to_json).collect()),
            )
            .with(
                "metrics",
                Json::Arr(
                    self.metrics
                        .iter()
                        .map(|m| {
                            Json::obj()
                                .with("id", m.id.as_str())
                                .with("value", m.value)
                                .with("unit", m.unit.as_str())
                        })
                        .collect(),
                ),
            )
            .with(
                "profiles",
                Json::Arr(
                    self.profiles
                        .iter()
                        .map(|(label, p)| {
                            Json::obj()
                                .with("label", label.as_str())
                                .with("profile", p.to_json())
                        })
                        .collect(),
                ),
            );
        if let Some(t) = &self.tally {
            j.push("tally", t.to_json());
        }
        j.push("notes", self.notes.as_str());
        // Validate now (non-finite table values etc.) so callers get the
        // error at build time, not at write time.
        j.render()?;
        Ok(j)
    }

    /// Strict inverse of [`Report::to_json`].
    pub fn from_json(j: &Json) -> Result<Report, ReportError> {
        let schema = j
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| ReportError::Schema("missing `schema`".into()))?;
        if schema != SCHEMA_VERSION as u64 {
            return Err(ReportError::Schema(format!(
                "schema version {schema} != supported {SCHEMA_VERSION}"
            )));
        }
        let kind = str_field(j, "report", "kind")?;
        if kind != REPORT_KIND {
            return Err(ReportError::Schema(format!(
                "kind `{kind}` is not `{REPORT_KIND}`"
            )));
        }
        let mut r = Report::new(
            &str_field(j, "report", "name")?,
            &str_field(j, "report", "title")?,
        );
        r.context = str_field(j, "report", "context")?;
        r.notes = str_field(j, "report", "notes")?;
        for t in arr_field(j, "report", "tables")? {
            r.tables.push(SeriesTable::from_json(t)?);
        }
        for m in arr_field(j, "report", "metrics")? {
            let value = m
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| ReportError::Schema("metric missing `value`".into()))?;
            r.metrics.push(Metric::checked(
                &str_field(m, "metric", "id")?,
                value,
                &str_field(m, "metric", "unit")?,
            )?);
        }
        for p in arr_field(j, "report", "profiles")? {
            let label = str_field(p, "profile entry", "label")?;
            let profile = p
                .get("profile")
                .ok_or_else(|| ReportError::Schema("profile entry missing `profile`".into()))?;
            r.profiles.push((label, KernelProfile::from_json(profile)?));
        }
        if let Some(t) = j.get("tally") {
            r.tally = Some(AccessTally::from_json(t)?);
        }
        Ok(r)
    }

    /// Write `<dir>/<name>.json`, creating the directory if needed.
    pub fn write_json(&self, dir: &Path) -> Result<PathBuf, ReportError> {
        let text = self.to_json()?.render()?;
        std::fs::create_dir_all(dir).map_err(|e| ReportError::Io(format!("{dir:?}: {e}")))?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, text).map_err(|e| ReportError::Io(format!("{path:?}: {e}")))?;
        Ok(path)
    }
}

fn str_field(j: &Json, ty: &str, key: &str) -> Result<String, ReportError> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ReportError::Schema(format!("{ty} missing string `{key}`")))
}

fn arr_field<'a>(j: &'a Json, ty: &str, key: &str) -> Result<&'a [Json], ReportError> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError::Schema(format!("{ty} missing array `{key}`")))
}

// ---------------------------------------------------------------------
// bin plumbing
// ---------------------------------------------------------------------

/// Where `emit` should mirror reports as JSON, if anywhere: the value
/// of a `--json DIR` argument, else `$TBS_REPORT_DIR`, else nowhere.
pub fn json_dir() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            if let Some(dir) = args.next() {
                return Some(PathBuf::from(dir));
            }
        }
    }
    std::env::var_os("TBS_REPORT_DIR").map(PathBuf::from)
}

/// [`emit`] a freshly built report, exiting non-zero if the build
/// failed (empty series, non-finite metric). The experiment bins route
/// through here so a broken sweep is a hard error, not silent NaN text.
pub fn emit_result(result: Result<Report, ReportError>) {
    match result {
        Ok(rep) => emit(&rep),
        Err(e) => {
            eprintln!("report build failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Print a report and, when a JSON directory is configured
/// ([`json_dir`]), mirror it to `<dir>/<name>.json`. All `src/bin/*`
/// experiment binaries route through here.
pub fn emit(report: &Report) {
    print!("{}", report.render());
    if let Some(dir) = json_dir() {
        match report.write_json(&dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write JSON report `{}`: {e}", report.name);
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("demo", "Demo — a sample report").with_context("B = 1024");
        let mut t = SeriesTable::new("times", &["N", "Naive", "speedup"]);
        t.row(vec![Cell::int(1024), Cell::secs(0.5), Cell::x(5.5)]);
        t.row(vec![
            Cell::text("total"),
            Cell::secs(1.25e-4),
            Cell::x3(1.001),
        ]);
        r.push_table(t);
        r.metric("speedup.geomean", 5.5, "x").unwrap();
        r.push_note("paper: ~5.5x");
        r
    }

    #[test]
    fn renders_tables_metrics_and_notes() {
        let text = sample().render();
        assert!(text.starts_with("Demo — a sample report\n(B = 1024)\n"));
        assert!(text.contains("Naive"));
        assert!(text.contains("5.5x"));
        assert!(text.contains("speedup.geomean = 5.5000 x"));
        assert!(text.ends_with("paper: ~5.5x\n"));
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let j = r.to_json().unwrap();
        let text = j.render().unwrap();
        let back = Report::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn rejects_nan_metrics() {
        let mut r = Report::new("bad", "Bad");
        let e = r.metric("g", crate::geomean(&[]), "x").unwrap_err();
        assert!(matches!(e, ReportError::NonFinite { .. }), "{e}");
        assert!(r.metrics.is_empty(), "failed metric must not be recorded");
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let mut j = sample().to_json().unwrap();
        if let Json::Obj(pairs) = &mut j {
            pairs[0].1 = Json::Num(99.0);
        }
        assert!(matches!(Report::from_json(&j), Err(ReportError::Schema(_))));
    }

    #[test]
    fn rejects_ragged_rows() {
        let mut j = sample().to_json().unwrap();
        let text = j.render().unwrap();
        // Recreate and mutilate: drop one cell from the first row.
        j = Json::parse(&text).unwrap();
        let tweaked = text.replacen("\"t\": \"1024\"", "\"t\": \"1024\", \"extra\": 0", 1);
        assert!(Report::from_json(&Json::parse(&tweaked).unwrap()).is_ok());
        // Removing a whole cell breaks the width check.
        let r = Report::from_json(&j).unwrap();
        let mut bad = r.to_json().unwrap();
        if let Some(Json::Arr(tables)) = bad_get_mut(&mut bad, "tables") {
            if let Some(Json::Arr(rows)) = bad_get_mut(&mut tables[0], "rows") {
                if let Json::Arr(cells) = &mut rows[0] {
                    cells.pop();
                }
            }
        }
        assert!(matches!(
            Report::from_json(&bad),
            Err(ReportError::Schema(_))
        ));
    }

    fn bad_get_mut<'a>(j: &'a mut Json, key: &str) -> Option<&'a mut Json> {
        match j {
            Json::Obj(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[test]
    fn write_json_lands_in_dir() {
        let dir = std::env::temp_dir().join("tbs_report_test");
        let path = sample().write_json(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"kind\": \"tbs-bench/report\""));
        std::fs::remove_file(path).ok();
    }
}
