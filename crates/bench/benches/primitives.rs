//! Microbenchmarks of the workspace's primitives: distance functions,
//! histogram reduction, data generation, contention estimation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tbs_core::analytic::expected_max_multiplicity;
use tbs_core::distance::{DistanceKernel, Euclidean, GaussianRbf};
use tbs_core::Histogram;
use tbs_datagen::{clustered_points, uniform_points};

fn bench_distance_host(c: &mut Criterion) {
    let pts = uniform_points::<3>(1024, 100.0, 9);
    let mut g = c.benchmark_group("distance_host");
    g.throughput(Throughput::Elements(1024 * 1024));
    g.sample_size(20);
    g.bench_function("euclidean_1m", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1024 {
                let a = pts.point(i);
                for j in 0..1024 {
                    let p = pts.point(j);
                    acc += <Euclidean as DistanceKernel<3>>::eval_host(&Euclidean, &a, &p);
                }
            }
            acc
        })
    });
    g.bench_function("rbf_1m", |b| {
        let k = GaussianRbf::new(5.0);
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..1024 {
                let a = pts.point(i);
                for j in 0..1024 {
                    let p = pts.point(j);
                    acc += <GaussianRbf as DistanceKernel<3>>::eval_host(&k, &a, &p);
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_histogram_merge(c: &mut Criterion) {
    let copies: Vec<Histogram> = (0..64)
        .map(|s| Histogram::from_counts(vec![s as u64; 4096]))
        .collect();
    let mut g = c.benchmark_group("histogram");
    g.sample_size(20);
    g.bench_function("merge_64x4096", |b| {
        b.iter(|| {
            let mut out = Histogram::zeroed(4096);
            for h in &copies {
                out.merge(h);
            }
            out.total()
        })
    });
    g.finish();
}

fn bench_datagen(c: &mut Criterion) {
    let mut g = c.benchmark_group("datagen");
    g.sample_size(10);
    g.bench_function("uniform_100k", |b| {
        b.iter(|| uniform_points::<3>(100_000, 100.0, 1))
    });
    g.bench_function("clustered_100k", |b| {
        b.iter(|| clustered_points::<3>(100_000, 100.0, 16, 2.0, 1))
    });
    g.finish();
}

fn bench_contention_estimator(c: &mut Criterion) {
    let mut g = c.benchmark_group("contention");
    g.sample_size(20);
    g.bench_function("expected_max_multiplicity_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for h in 1..=5000u32 {
                acc += expected_max_multiplicity(h);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_distance_host,
    bench_histogram_merge,
    bench_datagen,
    bench_contention_estimator
);
criterion_main!(benches);
