//! Host throughput of the functional SIMT simulator: lane-operations per
//! second executing the paper's kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::config::ExecMode;
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{pcf_gpu, sdh_gpu, PairwisePlan, SdhOutputMode};
use tbs_core::analytic::InputPath;
use tbs_core::kernels::IntraMode;
use tbs_core::HistogramSpec;
use tbs_datagen::{box_diagonal, uniform_points};

fn bench_pcf_kernels(c: &mut Criterion) {
    let n = 1024usize;
    let pts = uniform_points::<3>(n, 100.0, 5);
    let pairs = (n * (n - 1) / 2) as u64;
    let mut g = c.benchmark_group("sim_pcf_kernel");
    g.throughput(Throughput::Elements(pairs));
    g.sample_size(10);
    for input in [
        InputPath::Naive,
        InputPath::ShmShm,
        InputPath::RegisterShm,
        InputPath::RegisterRoc,
        InputPath::Shuffle,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(input.name()),
            &input,
            |b, &i| {
                b.iter(|| {
                    let mut dev = Device::new(DeviceConfig::titan_x());
                    let plan = PairwisePlan {
                        input: i,
                        intra: IntraMode::Regular,
                        block_size: 128,
                    };
                    pcf_gpu(&mut dev, &pts, 25.0, plan).expect("launch").count
                })
            },
        );
    }
    g.finish();
}

fn bench_sdh_functional(c: &mut Criterion) {
    let n = 1024usize;
    let pts = uniform_points::<3>(n, 100.0, 6);
    let spec = HistogramSpec::new(512, box_diagonal(100.0, 3));
    let mut g = c.benchmark_group("sim_sdh");
    g.sample_size(10);
    for (name, mode) in [
        ("privatized", SdhOutputMode::Privatized),
        ("global", SdhOutputMode::GlobalAtomics),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &m| {
            b.iter(|| {
                let mut dev = Device::new(DeviceConfig::titan_x());
                sdh_gpu(&mut dev, &pts, spec, PairwisePlan::register_shm(128), m)
                    .expect("launch")
                    .histogram
                    .total()
            })
        });
    }
    g.finish();
}

/// Host-side speedup of the parallel block-execution engine over the
/// sequential reference on the same workload. With `threads: 0` the
/// engine uses every available core; on a ≥4-core host the parallel row
/// should show a ≥2× improvement at this problem size.
fn bench_exec_modes(c: &mut Criterion) {
    let n = 4096usize;
    let pts = uniform_points::<3>(n, 100.0, 7);
    let spec = HistogramSpec::new(512, box_diagonal(100.0, 3));
    let mut g = c.benchmark_group("sim_exec_mode");
    g.throughput(Throughput::Elements((n * (n - 1) / 2) as u64));
    g.sample_size(10);
    let modes = [
        ("sequential", ExecMode::Sequential),
        ("parallel_auto", ExecMode::Parallel { threads: 0 }),
        ("parallel_2", ExecMode::Parallel { threads: 2 }),
        ("parallel_4", ExecMode::Parallel { threads: 4 }),
    ];
    for (name, mode) in modes {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &m| {
            b.iter(|| {
                let mut dev = Device::new(DeviceConfig::titan_x().with_exec_mode(m));
                sdh_gpu(
                    &mut dev,
                    &pts,
                    spec,
                    PairwisePlan::register_shm(128),
                    SdhOutputMode::Privatized,
                )
                .expect("launch")
                .histogram
                .total()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pcf_kernels,
    bench_sdh_functional,
    bench_exec_modes
);
criterion_main!(benches);
