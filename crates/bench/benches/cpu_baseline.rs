//! Wall-clock benchmarks of the real multi-core CPU baseline: the
//! scheduling-mode study of the paper's §IV-D on this host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tbs_core::HistogramSpec;
use tbs_cpu::{pcf_parallel, sdh_blocked, sdh_parallel, BlockedSdhConfig, CpuSdhConfig, Schedule};
use tbs_datagen::{box_diagonal, uniform_points};

fn bench_sdh_schedules(c: &mut Criterion) {
    let n = 4096usize;
    let pts = uniform_points::<3>(n, 100.0, 1);
    let spec = HistogramSpec::new(1024, box_diagonal(100.0, 3));
    let pairs = (n * (n - 1) / 2) as u64;
    let mut g = c.benchmark_group("cpu_sdh_schedule");
    g.throughput(Throughput::Elements(pairs));
    g.sample_size(10);
    for (name, schedule) in [
        ("static", Schedule::static_default()),
        ("dynamic", Schedule::dynamic_default()),
        ("guided", Schedule::Guided),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &schedule, |b, &s| {
            b.iter(|| {
                sdh_parallel(
                    &pts,
                    spec,
                    CpuSdhConfig {
                        threads: 4,
                        schedule: s,
                    },
                )
            })
        });
    }
    g.finish();
}

fn bench_sdh_thread_scaling(c: &mut Criterion) {
    let n = 4096usize;
    let pts = uniform_points::<3>(n, 100.0, 2);
    let spec = HistogramSpec::new(1024, box_diagonal(100.0, 3));
    let mut g = c.benchmark_group("cpu_sdh_threads");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                sdh_parallel(
                    &pts,
                    spec,
                    CpuSdhConfig {
                        threads: t,
                        schedule: Schedule::Guided,
                    },
                )
            })
        });
    }
    g.finish();
}

fn bench_pcf(c: &mut Criterion) {
    let n = 8192usize;
    let pts = uniform_points::<3>(n, 100.0, 3);
    let pairs = (n * (n - 1) / 2) as u64;
    let mut g = c.benchmark_group("cpu_pcf");
    g.throughput(Throughput::Elements(pairs));
    g.sample_size(10);
    g.bench_function("guided_4t", |b| {
        b.iter(|| pcf_parallel(&pts, 25.0, 4, Schedule::Guided))
    });
    g.finish();
}

fn bench_sdh_blocked_vs_rowwise(c: &mut Criterion) {
    // The paper's tiling insight applied to CPU caches: tile × tile
    // panels vs a plain row-wise triangle.
    let n = 8192usize;
    let pts = uniform_points::<3>(n, 100.0, 4);
    let spec = HistogramSpec::new(1024, box_diagonal(100.0, 3));
    let mut g = c.benchmark_group("cpu_sdh_traversal");
    g.throughput(Throughput::Elements((n * (n - 1) / 2) as u64));
    g.sample_size(10);
    g.bench_function("rowwise", |b| {
        b.iter(|| {
            sdh_parallel(
                &pts,
                spec,
                CpuSdhConfig {
                    threads: 1,
                    schedule: Schedule::Guided,
                },
            )
        })
    });
    for tile in [256usize, 1024, 4096] {
        g.bench_with_input(BenchmarkId::new("blocked", tile), &tile, |b, &t| {
            b.iter(|| {
                sdh_blocked(
                    &pts,
                    spec,
                    BlockedSdhConfig {
                        threads: 1,
                        tile: t,
                        schedule: Schedule::Guided,
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sdh_schedules,
    bench_sdh_thread_scaling,
    bench_pcf,
    bench_sdh_blocked_vs_rowwise
);
criterion_main!(benches);
