//! Speed of the closed-form prediction path: a full paper-scale
//! (N = 2×10⁶) kernel prediction should cost microseconds-to-milliseconds
//! of host time — that is what makes the figure sweeps instant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::DeviceConfig;
use tbs_core::analytic::{predicted_run, InputPath, KernelSpec, OutputPath, Workload};
use tbs_core::plan::{choose_plan, ProblemOutput, ProblemSpec};

fn bench_prediction(c: &mut Criterion) {
    let cfg = DeviceConfig::titan_x();
    let mut g = c.benchmark_group("analytic_predict");
    g.sample_size(20);
    for n in [128 * 1024u32, 2_000_896] {
        let wl = Workload {
            n,
            b: 1024,
            dims: 3,
            dist_cost: 7,
        };
        g.bench_with_input(BenchmarkId::from_parameter(n), &wl, |b, wl| {
            b.iter(|| {
                predicted_run(
                    wl,
                    &KernelSpec::new(
                        InputPath::RegisterShm,
                        OutputPath::SharedHistogram { buckets: 4096 },
                    ),
                    &cfg,
                )
                .seconds()
            })
        });
    }
    g.finish();
}

fn bench_planner(c: &mut Criterion) {
    let cfg = DeviceConfig::titan_x();
    let p = ProblemSpec {
        n: 512 * 1024,
        dims: 3,
        dist_cost: 7,
        output: ProblemOutput::Histogram { buckets: 4096 },
    };
    let mut g = c.benchmark_group("planner");
    g.sample_size(10);
    g.bench_function("choose_plan_sdh_512k", |b| b.iter(|| choose_plan(&p, &cfg)));
    g.finish();
}

criterion_group!(benches, bench_prediction, bench_planner);
criterion_main!(benches);
