//! Interpreter hot-path throughput: the four interpreter routes — the
//! plan-compiled route (default), fused tile passes
//! (`with_compiled(false)`), vectorized op-by-op
//! (`with_compiled(false).with_fused_tile(false)`), and the retained
//! `scalar_reference` implementation — on a small fig2-style 2-PCF
//! workload, under the config-default parallel block executor
//! (`sequential` benches the fused route's sequential engine for
//! comparison). Guards the speedups measured by the `hotpath_baseline`
//! bin against bitrot; run it with
//! `cargo bench -p tbs-bench --bench hotpath`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::config::ExecMode;
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{pcf_gpu, sdh_gpu, PairwisePlan, SdhOutputMode};
use tbs_core::histogram::HistogramSpec;
use tbs_datagen::uniform_points;

#[derive(Clone, Copy)]
enum Route {
    Fused,
    FusedSequential,
    Compiled,
    Vectorized,
    Scalar,
}

fn route_config(route: Route) -> DeviceConfig {
    // The config default is the parallel block executor and the
    // compiled route; the oracle routes switch the compiler off
    // explicitly, and only the sequential cross-check overrides the
    // engine.
    let cfg = DeviceConfig::titan_x();
    match route {
        Route::Fused => cfg.with_compiled(false),
        Route::FusedSequential => cfg
            .with_compiled(false)
            .with_exec_mode(ExecMode::Sequential),
        Route::Compiled => cfg,
        Route::Vectorized => cfg.with_compiled(false).with_fused_tile(false),
        Route::Scalar => cfg.with_scalar_reference(true),
    }
}

fn run(pts: &tbs_core::SoaPoints<3>, route: Route) -> u64 {
    let mut dev = Device::new(route_config(route));
    pcf_gpu(&mut dev, pts, 25.0, PairwisePlan::register_shm(1024))
        .expect("launch")
        .count
}

/// The Type-II workload: privatized SDH, histogram scatters in the
/// inner loop plus the Figure-3 cross-copy reduction.
fn run_sdh(pts: &tbs_core::SoaPoints<3>, route: Route) -> u64 {
    let mut dev = Device::new(route_config(route));
    sdh_gpu(
        &mut dev,
        pts,
        HistogramSpec::new(256, tbs_datagen::box_diagonal(100.0, 3)),
        PairwisePlan::register_shm(1024),
        SdhOutputMode::Privatized,
    )
    .expect("launch")
    .histogram
    .total()
}

fn bench_hotpath(c: &mut Criterion) {
    let n = 4096usize;
    let pts = uniform_points::<3>(n, 100.0, 11);
    let pairs = (n * (n - 1) / 2) as u64;
    let mut g = c.benchmark_group("sim_hotpath");
    g.throughput(Throughput::Elements(pairs));
    g.sample_size(10);
    for (name, route) in [
        ("vectorized", Route::Vectorized),
        ("scalar_reference", Route::Scalar),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &route, |b, &r| {
            b.iter(|| run(&pts, r))
        });
    }
    g.finish();

    // The shipping route, in its own group so A/B tooling can compare
    // `sim_fused/default` against `sim_hotpath/vectorized` directly.
    // `sequential` is the same route under the sequential block
    // executor; `sdh` is the Type-II output stage (fused histogram
    // scatters + packed reduction); `sdh_vectorized` its op-by-op
    // counterpart.
    let mut g = c.benchmark_group("sim_fused");
    g.throughput(Throughput::Elements(pairs));
    g.sample_size(10);
    g.bench_function("default", |b| b.iter(|| run(&pts, Route::Fused)));
    g.bench_function("sequential", |b| {
        b.iter(|| run(&pts, Route::FusedSequential))
    });
    g.bench_function("sdh", |b| b.iter(|| run_sdh(&pts, Route::Fused)));
    g.bench_function("sdh_vectorized", |b| {
        b.iter(|| run_sdh(&pts, Route::Vectorized))
    });
    g.finish();

    // The plan-compiled route: whole kernel plans lowered to
    // closed-form straight-line host passes (see `gpu_sim::exec`).
    let mut g = c.benchmark_group("sim_compiled");
    g.throughput(Throughput::Elements(pairs));
    g.sample_size(10);
    g.bench_function("default", |b| b.iter(|| run(&pts, Route::Compiled)));
    g.finish();

    // The compiled Type-II output stage on its own: the histogram sink
    // (sqrt-free bucketing + closed-form scatter accounting) and the
    // compiled Figure-3 reduction, with the fused route as the in-group
    // comparison leg for A/B tooling.
    let mut g = c.benchmark_group("sim_compiled_sdh");
    g.throughput(Throughput::Elements(pairs));
    g.sample_size(10);
    g.bench_function("default", |b| b.iter(|| run_sdh(&pts, Route::Compiled)));
    g.bench_function("fused", |b| b.iter(|| run_sdh(&pts, Route::Fused)));
    g.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
