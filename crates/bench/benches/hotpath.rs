//! Interpreter hot-path throughput: the vectorized fast paths against
//! the retained `scalar_reference` implementation on a small fig2-style
//! 2-PCF workload. Guards the speedup measured by the
//! `hotpath_baseline` bin against bitrot; run it with
//! `cargo bench -p tbs-bench --bench hotpath`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::config::ExecMode;
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{pcf_gpu, PairwisePlan};
use tbs_datagen::uniform_points;

fn bench_hotpath(c: &mut Criterion) {
    let n = 4096usize;
    let pts = uniform_points::<3>(n, 100.0, 11);
    let pairs = (n * (n - 1) / 2) as u64;
    let mut g = c.benchmark_group("sim_hotpath");
    g.throughput(Throughput::Elements(pairs));
    g.sample_size(10);
    for (name, scalar) in [("vectorized", false), ("scalar_reference", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scalar, |b, &s| {
            b.iter(|| {
                let cfg = DeviceConfig::titan_x()
                    .with_exec_mode(ExecMode::Sequential)
                    .with_scalar_reference(s);
                let mut dev = Device::new(cfg);
                pcf_gpu(&mut dev, &pts, 25.0, PairwisePlan::register_shm(1024))
                    .expect("launch")
                    .count
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
