//! Integration tests for the structured-report schema and the perf gate.
//!
//! Three layers:
//!
//! 1. property tests that arbitrary `Report` and `Baseline` documents
//!    survive a full JSON round trip (`to_json` → `render` → `parse` →
//!    `from_json`) bit-identically,
//! 2. the committed `results/baseline/*.json` files load under the
//!    current schema and the (fast, closed-form) model group passes the
//!    gate against them,
//! 3. a synthetically degraded baseline makes the gate report
//!    violations with a delta table — including when the metric has
//!    been deleted outright.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tbs_bench::report::gate::{
    self, baseline_dir, delta_table, evaluate, metric_map, violations, Baseline, Check,
};
use tbs_bench::report::{Cell, Metric, Report, ReportError, SeriesTable};
use tbs_json::Json;

// ---------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------

const WORDS: &[&str] = &[
    "fig2",
    "speedup",
    "naive",
    "reg-shm",
    "ops/s",
    "x",
    "ratio",
    "",
    "a b c",
    "quote\"brace{",
    "tab\tnewline\n",
    "unicode µs ≥4×",
];

fn word() -> impl Strategy<Value = String> {
    (0usize..WORDS.len()).prop_map(|i| WORDS[i].to_string())
}

fn report_round_trip(rep: &Report) -> Report {
    let text = rep.to_json().expect("encode").render().expect("render");
    Report::from_json(&Json::parse(&text).expect("parse")).expect("decode")
}

// ---------------------------------------------------------------------
// 1. schema round trips
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn report_json_round_trips(
        name in word(),
        title in word(),
        context in word(),
        notes in word(),
        metrics in prop::collection::vec((word(), -1e12f64..1e12, word()), 0..6),
        rows in prop::collection::vec((0u64..1_000_000, -1e6f64..1e6, word()), 0..8),
    ) {
        let mut rep = Report::new(&name, &title).with_context(&context);
        if !notes.is_empty() {
            rep.push_note(&notes);
        }
        for (i, (id, value, unit)) in metrics.iter().enumerate() {
            // ids must be unique within a report for metric_map; the
            // schema itself does not care, but keep them distinct so
            // the test reflects real documents.
            rep.metric(&format!("{id}.{i}"), *value, unit).unwrap();
        }
        if !rows.is_empty() {
            let mut t = SeriesTable::new("sweep", &["N", "value", "label"]);
            for (n, v, label) in &rows {
                t.row(vec![Cell::int(*n), Cell::num(*v, format!("{v:.4}")), Cell::text(label.clone())]);
            }
            rep.push_table(t);
        }
        prop_assert_eq!(report_round_trip(&rep), rep);
    }

    #[test]
    fn baseline_json_round_trips(
        name in word(),
        checks in prop::collection::vec(
            (word(), -1e9f64..1e9, word(), -1e9f64..0.0, 0.0f64..1e9, 0u32..4),
            0..8,
        ),
    ) {
        let baseline = Baseline {
            name,
            checks: checks
                .iter()
                .enumerate()
                .map(|(i, (metric, value, unit, lo, hi, which))| Check {
                    metric: format!("{metric}.{i}"),
                    value: *value,
                    unit: unit.clone(),
                    // exercise every limit combination, including
                    // fully unbounded checks
                    min: (*which & 1 != 0).then_some(*lo),
                    max: (*which & 2 != 0).then_some(*hi),
                })
                .collect(),
        };
        let text = baseline.to_json().expect("encode").render().expect("render");
        let back = Baseline::from_json(&Json::parse(&text).expect("parse")).expect("decode");
        prop_assert_eq!(back, baseline);
    }
}

#[test]
fn report_with_profile_and_tally_round_trips() {
    // Snapshot-bearing reports (Tables II–IV shape) must round-trip too.
    let cfg = gpu_sim::DeviceConfig::titan_x();
    let rep = tbs_bench::experiments::tables::build_table2_report(64 * 1024, &cfg)
        .expect("table2 report");
    assert!(!rep.profiles.is_empty(), "table2 embeds kernel profiles");
    assert_eq!(report_round_trip(&rep), rep);

    let rep = tbs_bench::experiments::ext_skew::build_report(512, 64, 64).expect("skew report");
    assert!(rep.tally.is_some(), "skew report embeds an access tally");
    assert_eq!(report_round_trip(&rep), rep);
}

#[test]
fn report_schema_rejects_foreign_documents() {
    let wrong_kind = Json::obj()
        .with("schema", 1u64)
        .with("kind", "something/else")
        .with("name", "x");
    assert!(matches!(
        Report::from_json(&wrong_kind),
        Err(ReportError::Schema(_))
    ));
    let wrong_version = Json::obj()
        .with("schema", 999u64)
        .with("kind", tbs_bench::report::REPORT_KIND);
    assert!(matches!(
        Report::from_json(&wrong_version),
        Err(ReportError::Schema(_))
    ));
}

// ---------------------------------------------------------------------
// 2. the committed baselines
// ---------------------------------------------------------------------

#[test]
fn committed_baselines_load_and_cover_every_gated_metric() {
    for group in gate::gate_groups() {
        let baseline = Baseline::load(&baseline_dir(), group.name)
            .unwrap_or_else(|e| panic!("committed baseline `{}` unreadable: {e}", group.name));
        assert_eq!(baseline.name, group.name);
        for spec in group.specs {
            assert!(
                baseline.checks.iter().any(|c| c.metric == spec.metric),
                "baseline `{}` lost gated metric `{}` — re-bless",
                group.name,
                spec.metric
            );
        }
    }
}

#[test]
fn perf_gate_passes_model_group_on_committed_baseline() {
    // The model group is pure closed-form arithmetic (no wall-clock),
    // so a fresh run must sit inside the committed bands on any host.
    let reports = gate::model_reports().expect("model sweep");
    let metrics = metric_map(&reports);
    let baseline = Baseline::load(&baseline_dir(), "model").expect("committed model baseline");
    let verdicts = evaluate(&baseline, &metrics);
    assert_eq!(
        violations(&verdicts),
        0,
        "model gate should be green on the committed baseline:\n{}",
        delta_table(&verdicts)
    );
}

// ---------------------------------------------------------------------
// 3. synthetic degradation must turn the gate red
// ---------------------------------------------------------------------

#[test]
fn perf_gate_fails_on_synthetically_degraded_baseline() {
    let reports = gate::model_reports().expect("model sweep");
    let metrics = metric_map(&reports);
    let fresh = Baseline::load(&baseline_dir(), "model").expect("committed model baseline");

    // Degrade: demand 10x the measured value on every floor-banded
    // metric (as if the code had slowed down 10x since blessing).
    let mut degraded = fresh.clone();
    let mut tightened = 0;
    for c in &mut degraded.checks {
        if let Some(min) = c.min {
            let measured = metrics[&c.metric].value;
            c.min = Some(min.max(measured.abs() * 10.0 + 1.0));
            tightened += 1;
        }
    }
    assert!(tightened > 0, "model baseline has floor bands to tighten");

    let verdicts = evaluate(&degraded, &metrics);
    let bad = violations(&verdicts);
    assert!(
        bad >= tightened,
        "expected >= {tightened} violations, got {bad}"
    );
    let table = delta_table(&verdicts);
    assert!(
        table.contains("VIOLATION"),
        "delta table flags violations:\n{table}"
    );
    // Violations sort to the top of the table (line 0 is the header,
    // line 1 the dash separator).
    let first_row = table.lines().nth(2).unwrap_or("");
    assert!(
        first_row.contains("VIOLATION"),
        "violations lead the delta table:\n{table}"
    );
}

#[test]
fn bless_refuses_a_sweep_missing_a_gated_metric() {
    // `perf_gate --bless` must never write a baseline that silently
    // drops a hard-banded metric: a partial sweep (here: one gated
    // metric deleted, as if its experiment stopped emitting it) has to
    // be a refusal, not a narrower baseline.
    let reports = gate::model_reports().expect("model sweep");
    let mut metrics: BTreeMap<String, Metric> = metric_map(&reports);
    let group = gate::gate_groups()
        .iter()
        .find(|g| g.name == "model")
        .expect("model gate group");

    // The complete sweep blesses cleanly (the refusal below is about
    // the missing metric, not some unrelated band violation).
    Baseline::bless(group, &metrics).expect("full sweep blesses");

    let victim = group.specs[0].metric;
    metrics.remove(victim).expect("victim metric exists");
    let err = Baseline::bless(group, &metrics).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("cannot bless") && msg.contains(victim),
        "refusal names the missing metric: {msg}"
    );
}

#[test]
fn perf_gate_treats_deleted_metric_as_violation() {
    let reports = gate::model_reports().expect("model sweep");
    let mut metrics: BTreeMap<String, Metric> = metric_map(&reports);
    let baseline = Baseline::load(&baseline_dir(), "model").expect("committed model baseline");

    let victim = baseline.checks[0].metric.clone();
    metrics.remove(&victim).expect("victim metric exists");
    let verdicts = evaluate(&baseline, &metrics);
    assert_eq!(violations(&verdicts), 1);
    let table = delta_table(&verdicts);
    assert!(
        table.contains("MISSING"),
        "deleted metric shows as MISSING:\n{table}"
    );
}

// ---------------------------------------------------------------------
// empty-series regression (the geomean-NaN bug)
// ---------------------------------------------------------------------

#[test]
fn empty_series_is_a_loud_error_not_nan_json() {
    // An empty sweep must surface as EmptySeries before any JSON is
    // produced — previously `geomean(&[])` yielded NaN, which a JSON
    // writer would have happily embedded as `null`-ish garbage.
    let err = tbs_bench::experiments::hotpath::build_report(&[]).unwrap_err();
    assert!(matches!(err, ReportError::EmptySeries { .. }), "{err}");

    // Even a non-empty sweep with no saturated sizes (fig2's gate
    // metrics average over N >= 100K only) must refuse, not emit NaN.
    let cfg = gpu_sim::DeviceConfig::titan_x();
    let sweep = tbs_datagen::paper_sweep(2, 1024);
    let small: Vec<u32> = sweep.into_iter().filter(|&n| n < 100_000).collect();
    if !small.is_empty() {
        let err = tbs_bench::experiments::fig2::build_report(&small, &cfg).unwrap_err();
        assert!(matches!(err, ReportError::EmptySeries { .. }), "{err}");
    }

    // And the report layer itself refuses non-finite metric values.
    let mut rep = Report::new("x", "x");
    assert!(matches!(
        rep.metric("bad", f64::NAN, "x"),
        Err(ReportError::NonFinite { .. })
    ));
}
