//! # tbs-datagen — synthetic workload generators
//!
//! The paper evaluates on synthetic data: *"Particle coordinates are
//! generated following a uniform distribution in a region"* (§IV-B), with
//! sizes from 512 to 2 million points. This crate provides that
//! generator plus a clustered (Gaussian-mixture) generator used by the
//! skew-sensitivity extension study, both fully deterministic under a
//! seed.

//! ```
//! let pts = tbs_datagen::uniform_points::<3>(1000, 100.0, 7);
//! assert_eq!(pts.len(), 1000);
//! // Deterministic under the seed:
//! assert_eq!(pts, tbs_datagen::uniform_points::<3>(1000, 100.0, 7));
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tbs_core::point::SoaPoints;

/// The default simulation-box edge length used across the experiments.
pub const DEFAULT_BOX: f32 = 100.0;

/// Uniformly-distributed points in `[0, edge)^D` — the paper's workload.
pub fn uniform_points<const D: usize>(n: usize, edge: f32, seed: u64) -> SoaPoints<D> {
    assert!(edge > 0.0, "box edge must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = SoaPoints::with_capacity(n);
    for _ in 0..n {
        pts.push(std::array::from_fn(|_| rng.random_range(0.0..edge)));
    }
    pts
}

/// Points drawn from a mixture of `clusters` isotropic Gaussians whose
/// centers are uniform in the box. `spread` is the per-cluster standard
/// deviation; coordinates are clamped into the box.
///
/// Skewed inputs concentrate pairwise distances into few histogram
/// buckets, stressing the atomic-contention behaviour the paper observes
/// at small output sizes (its Figure 5 discussion).
pub fn clustered_points<const D: usize>(
    n: usize,
    edge: f32,
    clusters: usize,
    spread: f32,
    seed: u64,
) -> SoaPoints<D> {
    assert!(clusters > 0, "need at least one cluster");
    assert!(spread >= 0.0, "spread must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<[f32; D]> = (0..clusters)
        .map(|_| std::array::from_fn(|_| rng.random_range(0.0..edge)))
        .collect();
    let mut pts = SoaPoints::with_capacity(n);
    for i in 0..n {
        let c = centers[i % clusters];
        pts.push(std::array::from_fn(|d| {
            // Clamp strictly inside the box: `edge - f32::EPSILON` would
            // round back to `edge` for edges ≥ 2, so scale the margin.
            (c[d] + gaussian(&mut rng) * spread).clamp(0.0, edge * (1.0 - 1e-6))
        }));
    }
    pts
}

/// Points drawn from Gaussian blobs at *explicit* centers with a
/// per-blob standard deviation — the controllable-skew catalog for the
/// spatial-pruning study (grid speedups and occupancy skew are
/// meaningless on uniform-only data). Points are assigned to blobs
/// round-robin and coordinates wrap periodically into `[0, edge)`
/// (`rem_euclid`), so a blob centered at the box edge spills to the
/// opposite face instead of piling up against a clamp.
///
/// `sigmas` must be the same length as `centers`; fully deterministic
/// under `seed`.
pub fn gaussian_blobs<const D: usize>(
    n: usize,
    edge: f32,
    centers: &[[f32; D]],
    sigmas: &[f32],
    seed: u64,
) -> SoaPoints<D> {
    assert!(edge > 0.0, "box edge must be positive");
    assert!(!centers.is_empty(), "need at least one blob center");
    assert_eq!(
        centers.len(),
        sigmas.len(),
        "one sigma per blob center required"
    );
    assert!(sigmas.iter().all(|&s| s >= 0.0), "sigmas must be >= 0");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = SoaPoints::with_capacity(n);
    for i in 0..n {
        let blob = i % centers.len();
        let (c, s) = (centers[blob], sigmas[blob]);
        pts.push(std::array::from_fn(|d| {
            let x = (c[d] + gaussian(&mut rng) * s).rem_euclid(edge);
            // rem_euclid can return `edge` itself when the remainder
            // rounds up; fold that single boundary value back inside.
            if x >= edge {
                0.0
            } else {
                x
            }
        }));
    }
    pts
}

/// A periodic-box uniform random catalog: a jittered (stratified)
/// lattice with one point per stratum and the remainder filled
/// uniformly. Statistically uniform in `[0, edge)^D` like
/// [`uniform_points`], but with sub-Poisson large-scale fluctuations —
/// the standard construction for the RR normalization catalog of
/// correlation-function estimators, where uniform-catalog shot noise
/// would otherwise dominate the error budget.
pub fn periodic_uniform_points<const D: usize>(n: usize, edge: f32, seed: u64) -> SoaPoints<D> {
    assert!(edge > 0.0, "box edge must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = SoaPoints::with_capacity(n);
    // Largest lattice with at most n sites.
    let m = (n as f64).powf(1.0 / D as f64).floor() as usize;
    if m >= 1 {
        let cell = edge / m as f32;
        let mut idx = [0usize; D];
        'lattice: loop {
            pts.push(std::array::from_fn(|d| {
                let x = (idx[d] as f32 + rng.random_range(0.0..1.0)) * cell;
                x.min(edge * (1.0 - 1e-6))
            }));
            for d in (0..D).rev() {
                idx[d] += 1;
                if idx[d] < m {
                    continue 'lattice;
                }
                idx[d] = 0;
            }
            break;
        }
    }
    while pts.len() < n {
        pts.push(std::array::from_fn(|_| rng.random_range(0.0..edge)));
    }
    pts
}

/// A standard normal sample via Box–Muller (the offline crate set has no
/// `rand_distr`).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// The maximum possible pairwise distance in a `[0, edge)^D` box (the
/// diagonal) — the natural SDH histogram range.
pub fn box_diagonal(edge: f32, dims: u32) -> f32 {
    edge * (dims as f32).sqrt()
}

/// The paper's data-size sweep: 512 → 2 M points (§IV-B), thinned to
/// `steps` geometrically-spaced sizes, each rounded to a multiple of
/// `block` so launches are full (equation 1's `M = N/B`).
pub fn paper_sweep(steps: usize, block: u32) -> Vec<u32> {
    assert!(steps >= 2);
    let (lo, hi) = (512f64.max(block as f64), 2_000_000f64);
    (0..steps)
        .map(|i| {
            let x = lo * (hi / lo).powf(i as f64 / (steps - 1) as f64);
            ((x / block as f64).round().max(1.0) as u32) * block
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_in_bounds() {
        let a = uniform_points::<3>(1000, 100.0, 7);
        let b = uniform_points::<3>(1000, 100.0, 7);
        let c = uniform_points::<3>(1000, 100.0, 8);
        assert_eq!(a, b, "same seed, same data");
        assert_ne!(a, c, "different seed, different data");
        for p in a.iter() {
            for &x in &p {
                assert!((0.0..100.0).contains(&x));
            }
        }
    }

    #[test]
    fn uniform_covers_the_box() {
        let pts = uniform_points::<2>(10_000, 100.0, 1);
        let mean: f32 = pts.coord(0).iter().sum::<f32>() / 10_000.0;
        assert!((45.0..55.0).contains(&mean), "mean {mean}");
        let lo = pts.coord(0).iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = pts.coord(0).iter().cloned().fold(0.0f32, f32::max);
        assert!(lo < 5.0 && hi > 95.0);
    }

    #[test]
    fn clustered_concentrates_points() {
        let pts = clustered_points::<3>(4000, 100.0, 4, 1.0, 3);
        assert_eq!(pts.len(), 4000);
        // Average nearest-center distance must be ~spread, far below the
        // uniform expectation (~tens).
        let centers: Vec<[f32; 3]> = (0..4).map(|c| pts.point(c)).collect();
        let mut total = 0.0f64;
        for p in pts.iter().take(500) {
            let d = centers
                .iter()
                .map(|c| {
                    ((p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2) + (p[2] - c[2]).powi(2)).sqrt()
                })
                .fold(f32::INFINITY, f32::min);
            total += d as f64;
        }
        assert!(total / 500.0 < 10.0, "avg nearest-center {}", total / 500.0);
    }

    #[test]
    fn clustered_stays_in_bounds() {
        let pts = clustered_points::<2>(2000, 50.0, 3, 20.0, 11);
        for p in pts.iter() {
            assert!((0.0..50.0).contains(&p[0]) && (0.0..50.0).contains(&p[1]));
        }
    }

    #[test]
    fn gaussian_blobs_are_deterministic_and_in_bounds() {
        let centers = [[20.0, 20.0, 20.0], [80.0, 80.0, 80.0]];
        let sigmas = [2.0, 5.0];
        let a = gaussian_blobs::<3>(2000, 100.0, &centers, &sigmas, 5);
        let b = gaussian_blobs::<3>(2000, 100.0, &centers, &sigmas, 5);
        let c = gaussian_blobs::<3>(2000, 100.0, &centers, &sigmas, 6);
        assert_eq!(a, b, "same seed, same catalog");
        assert_ne!(a, c, "different seed, different catalog");
        for p in a.iter() {
            for &x in &p {
                assert!((0.0..100.0).contains(&x), "coordinate {x} out of box");
            }
        }
    }

    #[test]
    fn gaussian_blobs_concentrate_at_their_centers() {
        let centers = [[25.0, 25.0], [75.0, 75.0]];
        let pts = gaussian_blobs::<2>(1000, 100.0, &centers, &[1.5, 1.5], 7);
        let near = pts
            .iter()
            .filter(|p| {
                centers
                    .iter()
                    .any(|c| ((p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2)).sqrt() < 6.0)
            })
            .count();
        // ~4σ capture: essentially everything.
        assert!(near > 990, "only {near}/1000 points near a center");
    }

    #[test]
    fn gaussian_blobs_wrap_periodically() {
        // A blob centered on the box corner spills to both faces, not
        // into a clamp spike at 0.
        let pts = gaussian_blobs::<1>(4000, 100.0, &[[0.0]], &[3.0], 8);
        let low = pts.iter().filter(|p| p[0] < 10.0).count();
        let high = pts.iter().filter(|p| p[0] > 90.0).count();
        assert!(low > 1000 && high > 1000, "low {low} high {high}");
        let exactly_zero = pts.iter().filter(|p| p[0] == 0.0).count();
        assert!(exactly_zero < 10, "clamp spike at 0: {exactly_zero}");
    }

    #[test]
    fn periodic_uniform_is_deterministic_in_bounds_and_stratified() {
        let a = periodic_uniform_points::<3>(5000, 100.0, 3);
        let b = periodic_uniform_points::<3>(5000, 100.0, 3);
        assert_eq!(a, b, "same seed, same catalog");
        assert_eq!(a.len(), 5000);
        for p in a.iter() {
            for &x in &p {
                assert!((0.0..100.0).contains(&x));
            }
        }
        // Stratification: every lattice stratum (17³ = 4913 ≤ 5000)
        // holds exactly one of the first 4913 points, so per-octant
        // counts are much tighter than Poisson.
        let mut octants = [0u32; 8];
        for p in a.iter() {
            let o = (p[0] >= 50.0) as usize
                | ((p[1] >= 50.0) as usize) << 1
                | ((p[2] >= 50.0) as usize) << 2;
            octants[o] += 1;
        }
        let (lo, hi) = (
            *octants.iter().min().unwrap(),
            *octants.iter().max().unwrap(),
        );
        assert!(hi - lo < 80, "octant spread {lo}..{hi} too wide");
    }

    #[test]
    fn periodic_uniform_handles_tiny_n() {
        assert_eq!(periodic_uniform_points::<3>(0, 10.0, 1).len(), 0);
        assert_eq!(periodic_uniform_points::<3>(1, 10.0, 1).len(), 1);
        assert_eq!(periodic_uniform_points::<3>(7, 10.0, 1).len(), 7);
    }

    #[test]
    fn box_diagonal_matches_geometry() {
        assert!((box_diagonal(100.0, 3) - 173.205).abs() < 0.01);
        assert!((box_diagonal(1.0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn paper_sweep_is_full_block_and_monotone() {
        let sweep = paper_sweep(8, 1024);
        assert_eq!(sweep.len(), 8);
        for w in sweep.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &n in &sweep {
            assert_eq!(n % 1024, 0);
        }
        assert!(*sweep.last().unwrap() >= 1_900_000);
    }
}
