//! Analytic CPU cost model.
//!
//! The paper's Figure 4/9 CPU series runs on an 8-core Xeon E5-2640v2 at
//! sizes up to 2×10⁶ points — about 2×10¹² distance evaluations, which is
//! days of wall-clock on this (1-vCPU) reproduction host. The measured
//! implementation ([`crate::sdh`]) validates correctness and the
//! scheduling study at small N; this model, **calibrated against that
//! implementation**, supplies the paper-scale CPU series.

use tbs_core::histogram::HistogramSpec;
use tbs_core::point::SoaPoints;

use crate::schedule::Schedule;
use crate::sdh::{sdh_parallel, CpuSdhConfig};

/// Throughput model of a multi-core CPU running the privatized
/// triangular pair loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Physical cores used.
    pub cores: u32,
    /// Nanoseconds per pair evaluation per core (distance + histogram
    /// update, SIMD-vectorized by the compiler).
    pub ns_per_pair_per_core: f64,
    /// Parallel efficiency (reduction, scheduling and memory-bandwidth
    /// losses).
    pub efficiency: f64,
}

impl CpuModel {
    /// The paper's platform: Intel Xeon E5-2640 v2, 8 cores, 2.0 GHz.
    /// `ns_per_pair_per_core`: a 3-D Euclidean distance plus a
    /// data-dependent histogram update — the scatter increment defeats
    /// full AVX vectorization, landing near 2 ns/pair/core. This places
    /// the best GPU kernel ≈ 50× ahead at the paper's sizes (its
    /// Figure 4).
    pub fn xeon_e5_2640_v2() -> Self {
        CpuModel {
            cores: 8,
            ns_per_pair_per_core: 1.9,
            efficiency: 0.92,
        }
    }

    /// Predicted seconds for an N-point 2-BS on this CPU.
    pub fn seconds(&self, n: u64) -> f64 {
        let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
        pairs * self.ns_per_pair_per_core * 1e-9 / (self.cores as f64 * self.efficiency)
    }

    /// Calibrate `ns_per_pair_per_core` by actually running the measured
    /// SDH implementation on `calib_n` points with `threads` workers on
    /// *this* host, then scaling the per-core throughput to the modeled
    /// core count. Returns the calibrated model.
    pub fn calibrated_from_host<const D: usize>(
        mut self,
        pts: &SoaPoints<D>,
        spec: HistogramSpec,
        threads: usize,
    ) -> Self {
        let n = pts.len() as f64;
        let start = std::time::Instant::now();
        let _ = sdh_parallel(
            pts,
            spec,
            CpuSdhConfig {
                threads,
                schedule: Schedule::Guided,
            },
        );
        let secs = start.elapsed().as_secs_f64();
        let pairs = n * (n - 1.0) / 2.0;
        // Host per-core throughput; assume the modeled CPU's cores are
        // comparable per-clock.
        self.ns_per_pair_per_core = secs * 1e9 / pairs * threads as f64 * self.efficiency;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_quadratic() {
        let m = CpuModel::xeon_e5_2640_v2();
        let t1 = m.seconds(100_000);
        let t2 = m.seconds(200_000);
        assert!((t2 / t1 - 4.0).abs() < 0.05, "{}", t2 / t1);
    }

    #[test]
    fn paper_scale_magnitude() {
        // At N = 1.6 M the paper's CPU takes on the order of hundreds of
        // seconds (its Fig. 4 log axis; the best GPU kernel is ~50× faster
        // at a few seconds).
        let m = CpuModel::xeon_e5_2640_v2();
        let t = m.seconds(1_600_000);
        assert!((50.0..2000.0).contains(&t), "t = {t}");
    }

    #[test]
    fn calibration_produces_positive_throughput() {
        let pts = tbs_datagen::uniform_points::<3>(2000, 100.0, 3);
        let spec = HistogramSpec::new(64, tbs_datagen::box_diagonal(100.0, 3));
        let m = CpuModel::xeon_e5_2640_v2().calibrated_from_host(&pts, spec, 1);
        assert!(m.ns_per_pair_per_core > 0.0 && m.ns_per_pair_per_core < 1000.0);
    }
}
