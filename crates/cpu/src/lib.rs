//! # tbs-cpu — the multi-core CPU comparator
//!
//! A faithful Rust port of the paper's OpenMP baseline (§IV-D "Design and
//! Implementation of CPU-based Algorithm"):
//!
//! * per-thread **privatized output histograms** with a final parallel
//!   reduction — no atomics on the hot path;
//! * OpenMP-style **loop schedules** (static / dynamic / guided) over the
//!   skewed triangular pair loop, with guided as the paper's chosen
//!   default;
//! * **algebraic elimination** of costly instructions (reciprocal-width
//!   bucketing, squared-radius comparisons).
//!
//! The paper also tunes OpenMP *thread affinity* (scatter / compact /
//! balanced). Thread pinning is not portable in std Rust and this
//! reproduction host exposes a single vCPU, so that study is replaced by
//! the schedule study plus the [`model`] module, which extrapolates the
//! measured implementation to the paper's 8-core Xeon.

//! ```
//! use tbs_core::HistogramSpec;
//! use tbs_cpu::{sdh_parallel, CpuSdhConfig, Schedule};
//!
//! let pts = tbs_datagen::uniform_points::<3>(500, 100.0, 42);
//! let spec = HistogramSpec::new(64, tbs_datagen::box_diagonal(100.0, 3));
//! let hist = sdh_parallel(
//!     &pts,
//!     spec,
//!     CpuSdhConfig { threads: 4, schedule: Schedule::Guided },
//! );
//! assert_eq!(hist.total(), 500 * 499 / 2);
//! ```

pub mod blocked;
pub mod grid;
pub mod model;
pub mod pcf;
pub mod schedule;
pub mod sdh;

pub use blocked::{sdh_blocked, BlockedSdhConfig};
pub use grid::{grid_pcf_device_reference, grid_pcf_reference, grid_radial_reference};
pub use model::CpuModel;
pub use pcf::{count_within_reference, pcf_parallel, pcf_reference};
pub use schedule::Schedule;
pub use sdh::{sdh_parallel, sdh_reference, CpuSdhConfig};
