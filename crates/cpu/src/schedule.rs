//! Loop-scheduling strategies for the triangular pair loop.
//!
//! The paper's CPU baseline (§IV-D) compares OpenMP's `static`, `dynamic`
//! and `guided` schedules and picks `guided`. The outer loop over rows of
//! the pair triangle is heavily skewed (row `i` has `N−1−i` pairs), so
//! the schedule choice matters; this module reimplements all three.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Which OpenMP-style schedule to use for the row loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Interleaved static assignment (`schedule(static, chunk)`): worker
    /// `t` takes chunks `t, t+T, t+2T, …`. Interleaving balances the
    /// triangle reasonably without synchronization.
    Static {
        /// Rows per chunk.
        chunk: usize,
    },
    /// Work-stealing from a shared cursor (`schedule(dynamic, chunk)`).
    Dynamic {
        /// Rows per grab.
        chunk: usize,
    },
    /// Exponentially-decreasing chunks (`schedule(guided)`) — the paper's
    /// pick: low overhead up front, fine-grained balancing at the tail.
    #[default]
    Guided,
}

impl Schedule {
    /// Reasonable defaults matching common OpenMP runtime choices.
    pub fn static_default() -> Self {
        Schedule::Static { chunk: 16 }
    }

    pub fn dynamic_default() -> Self {
        Schedule::Dynamic { chunk: 64 }
    }
}

/// A shared work queue over `0..n` rows for `workers` threads.
pub struct RowQueue {
    n: usize,
    workers: usize,
    schedule: Schedule,
    cursor: AtomicUsize,
}

impl RowQueue {
    pub fn new(n: usize, workers: usize, schedule: Schedule) -> Self {
        RowQueue {
            n,
            workers: workers.max(1),
            schedule,
            cursor: AtomicUsize::new(0),
        }
    }

    /// Next row range for `worker`; `None` when the loop is exhausted.
    /// `static_state` is the worker's private chunk counter (start at 0).
    pub fn next(&self, worker: usize, static_state: &mut usize) -> Option<std::ops::Range<usize>> {
        match self.schedule {
            Schedule::Static { chunk } => {
                let chunk = chunk.max(1);
                let idx = (*static_state * self.workers + worker) * chunk;
                *static_state += 1;
                if idx >= self.n {
                    None
                } else {
                    Some(idx..(idx + chunk).min(self.n))
                }
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                let start = self.cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= self.n {
                    None
                } else {
                    Some(start..(start + chunk).min(self.n))
                }
            }
            Schedule::Guided => loop {
                let start = self.cursor.load(Ordering::Relaxed);
                if start >= self.n {
                    return None;
                }
                let remaining = self.n - start;
                let chunk = (remaining / (2 * self.workers)).max(8).min(remaining);
                if self
                    .cursor
                    .compare_exchange_weak(
                        start,
                        start + chunk,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return Some(start..start + chunk);
                }
            },
        }
    }
}

/// Drain a queue completely from one worker (test/sequential helper).
pub fn drain_all(q: &RowQueue, worker: usize) -> Vec<std::ops::Range<usize>> {
    let mut state = 0usize;
    let mut out = Vec::new();
    while let Some(r) = q.next(worker, &mut state) {
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covered(ranges: impl IntoIterator<Item = std::ops::Range<usize>>, n: usize) -> bool {
        let mut seen = vec![false; n];
        for r in ranges {
            for i in r {
                assert!(!seen[i], "row {i} assigned twice");
                seen[i] = true;
            }
        }
        seen.into_iter().all(|b| b)
    }

    #[test]
    fn static_partitions_all_rows_exactly_once() {
        let q = RowQueue::new(1000, 4, Schedule::Static { chunk: 16 });
        let all: Vec<_> = (0..4).flat_map(|w| drain_all(&q, w)).collect();
        assert!(covered(all, 1000));
    }

    #[test]
    fn dynamic_partitions_all_rows_exactly_once() {
        let q = RowQueue::new(777, 3, Schedule::Dynamic { chunk: 10 });
        // Single-threaded drain across "workers" shares the cursor.
        let mut all = Vec::new();
        for w in 0..3 {
            all.extend(drain_all(&q, w));
        }
        assert!(covered(all, 777));
    }

    #[test]
    fn guided_partitions_all_rows_with_decreasing_chunks() {
        let q = RowQueue::new(10_000, 4, Schedule::Guided);
        let ranges = drain_all(&q, 0);
        assert!(covered(ranges.clone(), 10_000));
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert!(
            sizes[0] > *sizes.last().unwrap(),
            "guided chunks must shrink: {sizes:?}"
        );
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = RowQueue::new(0, 2, Schedule::Guided);
        assert!(drain_all(&q, 0).is_empty());
    }
}
