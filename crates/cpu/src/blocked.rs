//! Cache-blocked CPU SDH — the CPU analogue of the paper's GPU tiling.
//!
//! The paper's central pairwise-stage idea (load a block of data into
//! fast memory, compute everything against it) applies to CPU caches
//! just as to GPU shared memory: iterating the pair triangle in
//! `tile × tile` panels keeps both operands resident in L1/L2. This
//! module provides that blocked traversal as an alternative to the
//! row-wise loop of [`crate::sdh`], with the same privatized-histogram
//! output stage.

use crate::schedule::{RowQueue, Schedule};
use tbs_core::histogram::{Histogram, HistogramSpec};
use tbs_core::point::SoaPoints;

/// Configuration for the blocked CPU SDH.
#[derive(Debug, Clone, Copy)]
pub struct BlockedSdhConfig {
    /// Worker threads.
    pub threads: usize,
    /// Points per tile (a 3-D f32 tile of 1024 points is 12 KB — well
    /// within L1 on any modern core).
    pub tile: usize,
    /// Schedule over tile-row indices.
    pub schedule: Schedule,
}

impl Default for BlockedSdhConfig {
    fn default() -> Self {
        BlockedSdhConfig {
            threads: 8,
            tile: 1024,
            schedule: Schedule::Guided,
        }
    }
}

/// Compute the SDH with a tile × tile blocked traversal.
///
/// Work decomposition mirrors the GPU grid: tile-row `i` covers the
/// diagonal panel `(i, i)` plus all panels `(i, j)` for `j > i` — the
/// same "anchor block L against later blocks R" shape as the paper's
/// Algorithm 2.
pub fn sdh_blocked<const D: usize>(
    pts: &SoaPoints<D>,
    spec: HistogramSpec,
    cfg: BlockedSdhConfig,
) -> Histogram {
    let n = pts.len();
    if n < 2 {
        return Histogram::zeroed(spec.buckets);
    }
    let tile = cfg.tile.max(16);
    let tiles = n.div_ceil(tile);
    let threads = cfg.threads.clamp(1, tiles);
    let queue = RowQueue::new(tiles, threads, cfg.schedule);
    let inv = spec.inv_width();
    let hmax = spec.buckets - 1;

    let locals: Vec<Histogram> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut local = vec![0u64; (hmax + 1) as usize];
                    let mut sstate = 0usize;
                    while let Some(rows) = queue.next(worker, &mut sstate) {
                        for ti in rows {
                            let (i0, i1) = (ti * tile, ((ti + 1) * tile).min(n));
                            // Diagonal panel: the triangle within tile ti.
                            for i in i0..i1 {
                                let a = pts.point(i);
                                for j in (i + 1)..i1 {
                                    bin::<D>(&a, &pts.point(j), inv, hmax, &mut local);
                                }
                            }
                            // Off-diagonal panels (i, j>i): full rectangles.
                            let mut j0 = i1;
                            while j0 < n {
                                let j1 = (j0 + tile).min(n);
                                for i in i0..i1 {
                                    let a = pts.point(i);
                                    for j in j0..j1 {
                                        bin::<D>(&a, &pts.point(j), inv, hmax, &mut local);
                                    }
                                }
                                j0 = j1;
                            }
                        }
                    }
                    Histogram::from_counts(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("blocked sdh worker panicked"))
            .collect()
    });

    let mut out = Histogram::zeroed(spec.buckets);
    for l in &locals {
        out.merge(l);
    }
    out
}

#[inline(always)]
fn bin<const D: usize>(a: &[f32; D], b: &[f32; D], inv: f32, hmax: u32, local: &mut [u64]) {
    let mut s = 0.0f32;
    for d in 0..D {
        let diff = a[d] - b[d];
        s = diff.mul_add(diff, s);
    }
    let bucket = ((s.sqrt() * inv) as u32).min(hmax);
    local[bucket as usize] += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdh::sdh_reference;
    use tbs_datagen::{box_diagonal, uniform_points};

    fn spec() -> HistogramSpec {
        HistogramSpec::new(80, box_diagonal(100.0, 3))
    }

    #[test]
    fn blocked_matches_reference_across_tile_sizes() {
        let pts = uniform_points::<3>(777, 100.0, 7);
        let reference = sdh_reference(&pts, spec());
        for tile in [16usize, 100, 256, 1000] {
            let got = sdh_blocked(
                &pts,
                spec(),
                BlockedSdhConfig {
                    threads: 3,
                    tile,
                    schedule: Schedule::Guided,
                },
            );
            assert_eq!(got, reference, "tile = {tile}");
        }
    }

    #[test]
    fn blocked_matches_reference_when_tile_exceeds_n() {
        let pts = uniform_points::<3>(100, 100.0, 9);
        let got = sdh_blocked(&pts, spec(), BlockedSdhConfig::default());
        assert_eq!(got, sdh_reference(&pts, spec()));
    }

    #[test]
    fn all_schedules_agree() {
        let pts = uniform_points::<3>(500, 100.0, 11);
        let reference = sdh_reference(&pts, spec());
        for schedule in [
            Schedule::static_default(),
            Schedule::dynamic_default(),
            Schedule::Guided,
        ] {
            let got = sdh_blocked(
                &pts,
                spec(),
                BlockedSdhConfig {
                    threads: 4,
                    tile: 128,
                    schedule,
                },
            );
            assert_eq!(got, reference, "{schedule:?}");
        }
    }

    #[test]
    fn tiny_inputs() {
        let pts = uniform_points::<3>(1, 100.0, 13);
        assert_eq!(
            sdh_blocked(&pts, spec(), BlockedSdhConfig::default()).total(),
            0
        );
    }
}
