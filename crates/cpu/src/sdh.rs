//! The multi-core SDH baseline — the paper's "highly-optimized algorithm
//! for computing SDH in multi-core CPUs using OpenMP in C" (§IV-D).
//!
//! Optimizations mirrored from the paper's description:
//! * *output privatization*: "every thread is given an independent copy
//!   of the output histogram and parallel reduction is conducted after
//!   all distance function calls are returned";
//! * *schedule selection*: static / dynamic / guided row schedules
//!   ([`crate::schedule`]); the paper picks guided;
//! * *algebraic elimination*: bucket indices are computed with a
//!   reciprocal multiply instead of a division, and the square root is
//!   kept only because buckets are linear in distance.

use crate::schedule::{RowQueue, Schedule};
use tbs_core::histogram::{Histogram, HistogramSpec};
use tbs_core::point::SoaPoints;

/// Configuration for the parallel CPU SDH.
#[derive(Debug, Clone, Copy)]
pub struct CpuSdhConfig {
    /// Worker threads (the paper's Xeon E5-2640v2 runs 8 cores).
    pub threads: usize,
    /// Row schedule.
    pub schedule: Schedule,
}

impl Default for CpuSdhConfig {
    fn default() -> Self {
        CpuSdhConfig {
            threads: 8,
            schedule: Schedule::Guided,
        }
    }
}

/// Compute the SDH of `pts` with privatized per-thread histograms and a
/// final reduction.
pub fn sdh_parallel<const D: usize>(
    pts: &SoaPoints<D>,
    spec: HistogramSpec,
    cfg: CpuSdhConfig,
) -> Histogram {
    let n = pts.len();
    if n < 2 {
        return Histogram::zeroed(spec.buckets);
    }
    let threads = cfg.threads.clamp(1, n);
    let queue = RowQueue::new(n - 1, threads, cfg.schedule);
    let inv = spec.inv_width();
    let hmax = spec.buckets - 1;

    let locals: Vec<Histogram> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let queue = &queue;
                let pts = &pts;
                scope.spawn(move || {
                    let mut local = vec![0u64; (hmax + 1) as usize];
                    let mut sstate = 0usize;
                    while let Some(rows) = queue.next(worker, &mut sstate) {
                        for i in rows {
                            let a = pts.point(i);
                            for j in (i + 1)..n {
                                let b = pts.point(j);
                                let mut s = 0.0f32;
                                for d in 0..D {
                                    let diff = a[d] - b[d];
                                    s = diff.mul_add(diff, s);
                                }
                                let dist = s.sqrt();
                                let bucket = ((dist * inv) as u32).min(hmax);
                                local[bucket as usize] += 1;
                            }
                        }
                    }
                    Histogram::from_counts(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sdh worker panicked"))
            .collect()
    });

    // Parallel-reduction stage (tree order is irrelevant for sums; a
    // linear merge is optimal for the handful of copies involved).
    let mut out = Histogram::zeroed(spec.buckets);
    for l in &locals {
        out.merge(l);
    }
    out
}

/// Single-threaded reference SDH (ground truth for every other
/// implementation in the workspace, GPU kernels included).
pub fn sdh_reference<const D: usize>(pts: &SoaPoints<D>, spec: HistogramSpec) -> Histogram {
    let mut h = Histogram::zeroed(spec.buckets);
    let n = pts.len();
    for i in 0..n {
        let a = pts.point(i);
        for j in (i + 1)..n {
            let b = pts.point(j);
            let mut s = 0.0f32;
            for d in 0..D {
                let diff = a[d] - b[d];
                s = diff.mul_add(diff, s);
            }
            h.add(spec.bucket_of(s.sqrt()));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbs_datagen::uniform_points;

    fn spec() -> HistogramSpec {
        HistogramSpec::new(64, tbs_datagen::box_diagonal(100.0, 3))
    }

    #[test]
    fn parallel_matches_reference_for_all_schedules() {
        let pts = uniform_points::<3>(600, 100.0, 5);
        let reference = sdh_reference(&pts, spec());
        for schedule in [
            Schedule::static_default(),
            Schedule::dynamic_default(),
            Schedule::Guided,
        ] {
            let got = sdh_parallel(
                &pts,
                spec(),
                CpuSdhConfig {
                    threads: 4,
                    schedule,
                },
            );
            assert_eq!(got, reference, "{schedule:?}");
        }
    }

    #[test]
    fn total_counts_equal_pair_count() {
        let pts = uniform_points::<3>(500, 100.0, 9);
        let h = sdh_parallel(&pts, spec(), CpuSdhConfig::default());
        assert_eq!(h.total(), 500 * 499 / 2);
    }

    #[test]
    fn tiny_inputs_are_handled() {
        let pts = uniform_points::<3>(1, 100.0, 2);
        assert_eq!(
            sdh_parallel(&pts, spec(), CpuSdhConfig::default()).total(),
            0
        );
        let pts = uniform_points::<3>(2, 100.0, 2);
        assert_eq!(
            sdh_parallel(&pts, spec(), CpuSdhConfig::default()).total(),
            1
        );
    }

    #[test]
    fn more_threads_than_rows_still_correct() {
        let pts = uniform_points::<3>(10, 100.0, 3);
        let h = sdh_parallel(
            &pts,
            spec(),
            CpuSdhConfig {
                threads: 64,
                schedule: Schedule::Guided,
            },
        );
        assert_eq!(h.total(), 45);
    }
}
