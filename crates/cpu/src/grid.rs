//! Grid-pruned CPU counters — the exactness oracle for the GPU-side
//! spatial front end.
//!
//! These visit only the cell pairs that survive [`tbs_core::grid`]
//! culling, with per-pair arithmetic mirroring an all-pairs reference
//! pair-for-pair, so the grid route's integer outputs must be
//! **bit-identical** to the all-pairs route's; the differential tests
//! in `core/tests/grid_identity.rs` assert exactly that.
//!
//! One subtlety: the repo carries **two** within-radius predicates.
//! The CPU comparator ([`crate::pcf_reference`]) uses the paper's
//! algebraic elimination — `dist² < r²`, no sqrt — while the device
//! route (`Euclidean` + `CountWithinRadius`) computes `√dist² < r`.
//! The two agree except on ~1-in-10⁸ boundary pairs where the sqrt
//! rounding flips the compare, so each engine gets its own oracle:
//! [`grid_pcf_reference`] (squared, bit-identical to
//! [`crate::pcf_reference`]) and [`grid_pcf_device_reference`] (sqrt,
//! bit-identical to the device count at any N). Histograms bucket the
//! sqrt'ed distance on both engines, so one oracle suffices there.

use tbs_core::grid::{candidate_pairs, GridOptions, RadialBins, UniformGrid};
use tbs_core::histogram::Histogram;
use tbs_core::point::SoaPoints;

#[inline]
fn dist_sq<const D: usize>(a: [f32; D], b: [f32; D]) -> f32 {
    let mut s = 0.0f32;
    for d in 0..D {
        let diff = a[d] - b[d];
        s = diff.mul_add(diff, s);
    }
    s
}

/// Shared grid-walk: fold `pair(a, b) -> u64` over every candidate
/// pair exactly once.
fn count_over_pairs<const D: usize>(
    pts: &SoaPoints<D>,
    radius: f32,
    opts: &GridOptions,
    pair: impl Fn([f32; D], [f32; D]) -> u64,
) -> u64 {
    if pts.len() < 2 {
        return 0;
    }
    let grid = UniformGrid::build(pts, radius, opts);
    let mut count = 0u64;
    for p in candidate_pairs(&grid) {
        if p.is_intra() {
            let r = grid.cell_range(p.a as usize);
            for i in r.clone() {
                let a = grid.points.point(i);
                for j in (i + 1)..r.end {
                    count += pair(a, grid.points.point(j));
                }
            }
        } else {
            let (ra, rb) = (grid.cell_range(p.a as usize), grid.cell_range(p.b as usize));
            for i in ra {
                let a = grid.points.point(i);
                for j in rb.clone() {
                    count += pair(a, grid.points.point(j));
                }
            }
        }
    }
    count
}

/// Grid-pruned within-radius pair count, CPU predicate (`dist² < r²`,
/// the paper's sqrt-free compare). Must equal [`crate::pcf_reference`]
/// exactly for any `radius ≤` the grid's sizing radius.
pub fn grid_pcf_reference<const D: usize>(
    pts: &SoaPoints<D>,
    radius: f32,
    opts: &GridOptions,
) -> u64 {
    let r2 = radius * radius;
    count_over_pairs(pts, radius, opts, |a, b| u64::from(dist_sq(a, b) < r2))
}

/// Grid-pruned within-radius pair count, *device* predicate
/// (`√dist² < r`, exactly `Euclidean::eval_host` + the
/// `CountWithinRadius` compare). Bit-identical to the gridded device
/// route at any N — the oracle for sizes where running the device
/// all-pairs route is unaffordable.
pub fn grid_pcf_device_reference<const D: usize>(
    pts: &SoaPoints<D>,
    radius: f32,
    opts: &GridOptions,
) -> u64 {
    count_over_pairs(pts, radius, opts, |a, b| {
        u64::from(dist_sq(a, b).sqrt() < radius)
    })
}

/// Grid-pruned bounded radial histogram. Must equal the all-pairs
/// histogram computed with [`RadialBins::device_spec`] and finalized
/// with [`RadialBins::finalize`] — i.e. [`crate::sdh_reference`] run on
/// the overflow-bucket spec, with the overflow dropped.
pub fn grid_radial_reference<const D: usize>(
    pts: &SoaPoints<D>,
    bins: RadialBins,
    opts: &GridOptions,
) -> Histogram {
    let spec = bins.device_spec();
    let mut h = Histogram::zeroed(spec.buckets);
    if pts.len() >= 2 {
        let grid = UniformGrid::build(pts, bins.r_max, opts);
        let mut pair = |a: [f32; D], b: [f32; D]| h.add(spec.bucket_of(dist_sq(a, b).sqrt()));
        for p in candidate_pairs(&grid) {
            if p.is_intra() {
                let r = grid.cell_range(p.a as usize);
                for i in r.clone() {
                    for j in (i + 1)..r.end {
                        pair(grid.points.point(i), grid.points.point(j));
                    }
                }
            } else {
                let (ra, rb) = (grid.cell_range(p.a as usize), grid.cell_range(p.b as usize));
                for i in ra {
                    for j in rb.clone() {
                        pair(grid.points.point(i), grid.points.point(j));
                    }
                }
            }
        }
    }
    bins.finalize(&h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbs_core::histogram::HistogramSpec;

    #[test]
    fn grid_count_matches_all_pairs_reference() {
        for (n, r) in [(0, 5.0), (1, 5.0), (500, 5.0), (777, 12.5), (1024, 40.0)] {
            let pts = tbs_datagen::uniform_points::<3>(n, 100.0, n as u64 + 3);
            assert_eq!(
                grid_pcf_reference(&pts, r, &GridOptions::default()),
                crate::pcf_reference(&pts, r),
                "n={n} r={r}"
            );
        }
    }

    #[test]
    fn grid_histogram_matches_overflow_spec_reference() {
        let pts = tbs_datagen::clustered_points::<3>(900, 100.0, 5, 3.0, 77);
        let bins = RadialBins::new(24, 15.0);
        let got = grid_radial_reference(
            &pts,
            bins,
            &GridOptions {
                target_points_per_cell: 32,
                max_cells: 1 << 20,
            },
        );
        let all = crate::sdh_reference(&pts, bins.device_spec());
        assert_eq!(got, bins.finalize(&all));
        // Sanity: the retained mass is exactly the < r_max pair count
        // (strict bucket edges match the count predicate only up to
        // boundary rounding, so compare against the spec itself).
        assert_eq!(got.counts().len(), 24);
    }

    #[test]
    fn fine_grids_agree_with_coarse_grids() {
        let pts = tbs_datagen::uniform_points::<2>(600, 50.0, 9);
        let a = grid_pcf_reference(
            &pts,
            6.0,
            &GridOptions {
                target_points_per_cell: 4,
                max_cells: 1 << 20,
            },
        );
        let b = grid_pcf_reference(
            &pts,
            6.0,
            &GridOptions {
                target_points_per_cell: 256,
                max_cells: 1 << 20,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_all_points_identical() {
        let pts = SoaPoints::<3>::from_points(&vec![[1.0, 2.0, 3.0]; 64]);
        assert_eq!(
            grid_pcf_reference(&pts, 0.5, &GridOptions::default()),
            64 * 63 / 2
        );
        let spec = HistogramSpec::new(4, 1.0);
        let _ = spec; // bucket 0 holds everything in the radial case:
        let h = grid_radial_reference(&pts, RadialBins::new(4, 1.0), &GridOptions::default());
        assert_eq!(h.counts()[0], 64 * 63 / 2);
    }
}
