//! Multi-core 2-point correlation function (Type-I comparator).

use crate::schedule::{RowQueue, Schedule};
use tbs_core::point::SoaPoints;

/// Count pairs with Euclidean distance `< radius`, in parallel with
/// per-thread register accumulators (no shared state on the hot path).
pub fn pcf_parallel<const D: usize>(
    pts: &SoaPoints<D>,
    radius: f32,
    threads: usize,
    schedule: Schedule,
) -> u64 {
    let n = pts.len();
    if n < 2 {
        return 0;
    }
    let threads = threads.clamp(1, n);
    let queue = RowQueue::new(n - 1, threads, schedule);
    let r2 = radius * radius;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut count = 0u64;
                    let mut sstate = 0usize;
                    while let Some(rows) = queue.next(worker, &mut sstate) {
                        for i in rows {
                            let a = pts.point(i);
                            for j in (i + 1)..n {
                                let b = pts.point(j);
                                let mut s = 0.0f32;
                                for d in 0..D {
                                    let diff = a[d] - b[d];
                                    s = diff.mul_add(diff, s);
                                }
                                // Squared-radius comparison: no sqrt on
                                // the hot path (the paper's "algebraic
                                // elimination of costly instructions").
                                count += u64::from(s < r2);
                            }
                        }
                    }
                    count
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pcf worker panicked"))
            .sum()
    })
}

/// Single-threaded reference.
pub fn pcf_reference<const D: usize>(pts: &SoaPoints<D>, radius: f32) -> u64 {
    let n = pts.len();
    let r2 = radius * radius;
    let mut count = 0u64;
    for i in 0..n {
        let a = pts.point(i);
        for j in (i + 1)..n {
            let b = pts.point(j);
            let mut s = 0.0f32;
            for d in 0..D {
                let diff = a[d] - b[d];
                s = diff.mul_add(diff, s);
            }
            count += u64::from(s < r2);
        }
    }
    count
}

/// Single-threaded count with the **device** comparison semantics:
/// `sqrt(s) < radius`, exactly as the GPU kernels' distance chain
/// (per-dimension `sub` + `mul_add`, then `sqrt`) evaluates it.
///
/// [`pcf_reference`] compares the squared distance (`s < radius²`),
/// which is faster but can disagree with the device by one pair when a
/// squared distance rounds across the boundary: `s < r²` while
/// `sqrt(s)` rounds up to ≥ `r` (or the reverse). At a few hundred
/// points no seed in the test suite straddles the boundary; at millions
/// of pairs such collisions are routine. Use this function as the
/// oracle for anything that must be *bit-identical* to a GPU count
/// (the query service's differential suite does).
pub fn count_within_reference<const D: usize>(pts: &SoaPoints<D>, radius: f32) -> u64 {
    let n = pts.len();
    let mut count = 0u64;
    for i in 0..n {
        let a = pts.point(i);
        for j in (i + 1)..n {
            let b = pts.point(j);
            let mut s = 0.0f32;
            for d in 0..D {
                let diff = a[d] - b[d];
                s = diff.mul_add(diff, s);
            }
            count += u64::from(s.sqrt() < radius);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbs_core::distance::{DistanceKernel, Euclidean};
    use tbs_datagen::uniform_points;

    #[test]
    fn parallel_matches_reference() {
        let pts = uniform_points::<3>(800, 100.0, 13);
        let expect = pcf_reference(&pts, 20.0);
        for schedule in [
            Schedule::static_default(),
            Schedule::dynamic_default(),
            Schedule::Guided,
        ] {
            assert_eq!(
                pcf_parallel(&pts, 20.0, 4, schedule),
                expect,
                "{schedule:?}"
            );
        }
    }

    /// The device-semantics count is pinned to the distance kernel's
    /// own host evaluation — the contract the GPU routes are built on.
    #[test]
    fn device_semantics_count_matches_eval_host() {
        let pts = uniform_points::<3>(400, 100.0, 99);
        let n = pts.len();
        let mut want = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = Euclidean.eval_host(&pts.point(i), &pts.point(j));
                want += u64::from(d < 20.0);
            }
        }
        assert_eq!(count_within_reference(&pts, 20.0), want);
    }

    /// A pair whose squared distance rounds across the boundary: the
    /// squared-compare reference and the device-semantics count must
    /// (by construction) disagree by exactly one pair, documenting why
    /// bit-identity oracles use the latter.
    #[test]
    fn squared_compare_can_disagree_at_the_boundary() {
        // Search a dense band of separations just under r for one where
        // `s < r²` and `sqrt(s) < r` differ; f32 rounding guarantees
        // several exist in any fine enough sweep.
        let r = 20.0f32;
        let found = (0..20_000).find_map(|k| {
            let d = r - (k as f32) * 1e-6;
            let s = d.mul_add(d, 0.0);
            if (s < r * r) != (s.sqrt() < r) {
                Some(d)
            } else {
                None
            }
        });
        if let Some(d) = found {
            let pts = SoaPoints::<3>::from_points(&[[0.0, 0.0, 0.0], [d, 0.0, 0.0]]);
            assert_ne!(
                pcf_reference(&pts, r),
                count_within_reference(&pts, r),
                "boundary pair at separation {d} must split the references"
            );
        }
    }

    #[test]
    fn radius_extremes() {
        let pts = uniform_points::<2>(200, 100.0, 1);
        assert_eq!(pcf_parallel(&pts, 0.0, 4, Schedule::Guided), 0);
        let all = pcf_parallel(&pts, 1e9, 4, Schedule::Guided);
        assert_eq!(all, 200 * 199 / 2);
    }
}
