//! Multi-core 2-point correlation function (Type-I comparator).

use crate::schedule::{RowQueue, Schedule};
use tbs_core::point::SoaPoints;

/// Count pairs with Euclidean distance `< radius`, in parallel with
/// per-thread register accumulators (no shared state on the hot path).
pub fn pcf_parallel<const D: usize>(
    pts: &SoaPoints<D>,
    radius: f32,
    threads: usize,
    schedule: Schedule,
) -> u64 {
    let n = pts.len();
    if n < 2 {
        return 0;
    }
    let threads = threads.clamp(1, n);
    let queue = RowQueue::new(n - 1, threads, schedule);
    let r2 = radius * radius;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut count = 0u64;
                    let mut sstate = 0usize;
                    while let Some(rows) = queue.next(worker, &mut sstate) {
                        for i in rows {
                            let a = pts.point(i);
                            for j in (i + 1)..n {
                                let b = pts.point(j);
                                let mut s = 0.0f32;
                                for d in 0..D {
                                    let diff = a[d] - b[d];
                                    s = diff.mul_add(diff, s);
                                }
                                // Squared-radius comparison: no sqrt on
                                // the hot path (the paper's "algebraic
                                // elimination of costly instructions").
                                count += u64::from(s < r2);
                            }
                        }
                    }
                    count
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pcf worker panicked"))
            .sum()
    })
}

/// Single-threaded reference.
pub fn pcf_reference<const D: usize>(pts: &SoaPoints<D>, radius: f32) -> u64 {
    let n = pts.len();
    let r2 = radius * radius;
    let mut count = 0u64;
    for i in 0..n {
        let a = pts.point(i);
        for j in (i + 1)..n {
            let b = pts.point(j);
            let mut s = 0.0f32;
            for d in 0..D {
                let diff = a[d] - b[d];
                s = diff.mul_add(diff, s);
            }
            count += u64::from(s < r2);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbs_datagen::uniform_points;

    #[test]
    fn parallel_matches_reference() {
        let pts = uniform_points::<3>(800, 100.0, 13);
        let expect = pcf_reference(&pts, 20.0);
        for schedule in [
            Schedule::static_default(),
            Schedule::dynamic_default(),
            Schedule::Guided,
        ] {
            assert_eq!(
                pcf_parallel(&pts, 20.0, 4, schedule),
                expect,
                "{schedule:?}"
            );
        }
    }

    #[test]
    fn radius_extremes() {
        let pts = uniform_points::<2>(200, 100.0, 1);
        assert_eq!(pcf_parallel(&pts, 0.0, 4, Schedule::Guided), 0);
        let all = pcf_parallel(&pts, 1e9, 4, Schedule::Guided);
        assert_eq!(all, 200 * 199 / 2);
    }
}
