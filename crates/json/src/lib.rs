//! Minimal JSON for the offline workspace.
//!
//! The build container has no crates.io access, so instead of `serde` +
//! `serde_json` this crate provides the small JSON surface the harness
//! needs to make benchmark results machine-checkable:
//!
//! * [`Json`] — an ordered value tree (object keys keep insertion
//!   order, so emitted documents are byte-stable and diff cleanly in
//!   version control);
//! * [`Json::render`] — a pretty printer that *refuses* non-finite
//!   numbers (`NaN`/`±inf` have no JSON encoding; silently emitting
//!   them would corrupt committed baselines);
//! * [`Json::parse`] — a strict recursive-descent parser for the full
//!   JSON grammar (escapes, `\uXXXX` with surrogate pairs, exponents),
//!   with a depth limit instead of unbounded recursion.
//!
//! Numbers are IEEE-754 doubles, exactly as in JavaScript: integers
//! round-trip losslessly up to 2^53. The experiment counters serialized
//! through this crate stay far below that.

use std::fmt;

/// Maximum nesting depth [`Json::parse`] accepts.
const MAX_DEPTH: usize = 128;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are f64 (2^53 integer round-trip limit).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an association list: insertion order is preserved on
    /// render, and duplicate keys are rejected by the parser.
    Obj(Vec<(String, Json)>),
}

/// Error raised by [`Json::parse`] or [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input (0 for render errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>, offset: usize) -> Result<T, JsonError> {
    Err(JsonError {
        msg: msg.into(),
        offset,
    })
}

// ---------------------------------------------------------------------
// construction & access
// ---------------------------------------------------------------------

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object (panics if `self` is not an object —
    /// a construction bug, not a data error).
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Json::push`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.push(key, value);
        self
    }

    /// Look up an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view of a number (exact only; rejects fractional values
    /// and anything outside the 2^53-safe range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && (0.0..=9007199254740992.0).contains(v) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

// ---------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------

impl Json {
    /// Pretty-print with 2-space indentation and a trailing newline.
    ///
    /// Fails on non-finite numbers: `NaN` and `±inf` cannot be encoded
    /// as JSON, and a baseline file containing them would be unreadable
    /// by any checker — the error carries the first offending value's
    /// path.
    pub fn render(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.render_into(&mut out, 0, "$")?;
        out.push('\n');
        Ok(out)
    }

    /// Render on a single line with no insignificant whitespace and no
    /// trailing newline — for line-oriented protocols where one value
    /// must occupy one line. Same non-finite-number rule as
    /// [`Json::render`].
    pub fn render_compact(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.render_compact_into(&mut out, "$")?;
        Ok(out)
    }

    fn render_compact_into(&self, out: &mut String, path: &str) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    return err(format!("non-finite number {v} at {path}"), 0);
                }
                out.push_str(&format!("{v}"));
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact_into(out, &format!("{path}[{i}]"))?;
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_compact_into(out, &format!("{path}.{k}"))?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    fn render_into(&self, out: &mut String, indent: usize, path: &str) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    return err(format!("non-finite number {v} at {path}"), 0);
                }
                // Rust's shortest-round-trip Display is valid JSON for
                // every finite double except negative zero's sign, which
                // JSON also allows.
                out.push_str(&format!("{v}"));
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                } else {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                        item.render_into(out, indent + 1, &format!("{path}[{i}]"))?;
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                    out.push(']');
                }
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                } else {
                    out.push('{');
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                        escape_into(k, out);
                        out.push_str(": ");
                        v.render_into(out, indent + 1, &format!("{path}.{k}"))?;
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                    out.push('}');
                }
            }
        }
        Ok(())
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err("trailing characters after document", p.pos);
        }
        Ok(v)
    }
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected '{}'", b as char), self.pos)
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal, expected '{word}'"), self.pos)
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return err("nesting too deep", self.pos);
        }
        match self.peek() {
            None => err("unexpected end of input", self.pos),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => err(format!("unexpected character '{}'", c as char), self.pos),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err("expected ',' or ']' in array", self.pos),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return err(format!("duplicate key \"{key}\""), key_at);
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return err("expected ',' or '}' in object", self.pos),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one leading zero, or a non-zero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return err("invalid number", start),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            // Overflowing literals (e.g. 1e999) parse to inf — reject.
            _ => err(format!("number '{text}' out of range"), start),
        }
    }

    fn digits(&mut self) -> Result<(), JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            err("expected digits", start)
        } else {
            Ok(())
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let at = self.pos;
            match self.peek() {
                None => return err("unterminated string", at),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return err("unpaired high surrogate", at);
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return err("unpaired high surrogate", at);
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return err("invalid low surrogate", at);
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or(JsonError {
                                    msg: "invalid surrogate pair".into(),
                                    offset: at,
                                })?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return err("unexpected low surrogate", at);
                            } else {
                                char::from_u32(hi).ok_or(JsonError {
                                    msg: "invalid \\u escape".into(),
                                    offset: at,
                                })?
                            };
                            s.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return err("invalid escape", at),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return err("raw control character in string", at),
                Some(b) if b < 0x80 => {
                    s.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid — copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("parser input is valid utf-8");
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consume exactly four hex digits and return their value.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let start = self.pos;
        if self.bytes.len() < start + 4 {
            return err("truncated \\u escape", start);
        }
        let mut v = 0u32;
        for i in 0..4 {
            let d = match self.bytes[start + i] {
                b @ b'0'..=b'9' => (b - b'0') as u32,
                b @ b'a'..=b'f' => (b - b'a' + 10) as u32,
                b @ b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return err("invalid hex digit in \\u escape", start + i),
            };
            v = v * 16 + d;
        }
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders_objects_in_order() {
        let j = Json::obj()
            .with("b", 2u32)
            .with("a", 1u32)
            .with("s", "hi")
            .with("flag", true)
            .with("none", Json::Null);
        let text = j.render().unwrap();
        let b = text.find("\"b\"").unwrap();
        let a = text.find("\"a\"").unwrap();
        assert!(b < a, "insertion order must be preserved:\n{text}");
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn compact_render_is_one_line_and_round_trips() {
        let j = Json::obj().with("a", 1u32).with("s", "x\ny").with(
            "arr",
            vec![Json::Num(1.5), Json::Null, Json::Arr(vec![]), Json::obj()],
        );
        let text = j.render_compact().unwrap();
        assert!(!text.contains('\n'), "compact must be one line: {text:?}");
        assert!(
            !text.contains(": "),
            "no insignificant whitespace: {text:?}"
        );
        assert_eq!(Json::parse(&text).unwrap(), j);
        assert_eq!(text, r#"{"a":1,"s":"x\ny","arr":[1.5,null,[],{}]}"#);
        let e = Json::obj()
            .with("x", f64::NAN)
            .render_compact()
            .unwrap_err();
        assert!(e.msg.contains("$.x"), "{e}");
    }

    #[test]
    fn rejects_non_finite_numbers() {
        let e = Json::obj().with("x", f64::NAN).render().unwrap_err();
        assert!(e.msg.contains("$.x"), "{e}");
        assert!(Json::Num(f64::INFINITY).render().is_err());
    }

    #[test]
    fn numbers_round_trip() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -2.25,
            1e-12,
            123456789.0,
            9007199254740991.0, // 2^53 - 1
            6.02e23,
            f64::MIN_POSITIVE,
        ] {
            let text = Json::Num(v).render().unwrap();
            let back = Json::parse(text.trim()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn u64_accessor_is_exact_only() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(42.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{08}\u{0c}\u{1b}中🚀";
        let text = Json::Str(s.to_string()).render().unwrap();
        assert_eq!(Json::parse(text.trim()).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str().unwrap(), "😀");
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
        assert!(Json::parse(r#""\x""#).is_err(), "bad escape");
        assert!(Json::parse("\"raw\u{01}\"").is_err(), "control char");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "01",
            "1.",
            "1e",
            "--1",
            "[1]x",
            "{\"a\":1,\"a\":2}",
            "\u{221e}",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accepts_whitespace_and_nesting() {
        let j = Json::parse(" { \"a\" : [ 1 , { \"b\" : [ ] } , null ] } ").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn depth_limit_defends_the_stack() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.msg.contains("deep"), "{e}");
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(Json::obj().render().unwrap(), "{}\n");
        assert_eq!(Json::Arr(vec![]).render().unwrap(), "[]\n");
    }
}
