//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to a crates.io mirror, so the
//! workspace vendors the *subset* of the `rand 0.9` API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::random_range`] over half-open ranges.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
//! 64-bit state avalanched through two xor-shift-multiply rounds per
//! output. It passes BigCrush when used as a stream and is more than
//! adequate for seeded test-data generation. It is **not** a
//! cryptographic RNG and does **not** reproduce upstream `StdRng`
//! streams — callers in this workspace only rely on same-seed
//! determinism, not on specific values.

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        // High half: SplitMix64's upper bits are the best-avalanched.
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open, like upstream).
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(&range, self)
    }

    /// Sample a value of type `T` from its full domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore>(range: &Range<Self>, rng: &mut R) -> Self;
}

/// Types samplable from their "natural" full distribution.
pub trait Standard: Sized {
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(range: &Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Lemire-style widening multiply keeps modulo bias below
                // 2^-64 for every span this workspace uses.
                let x = rng.next_u64() as u128;
                let off = ((x * span) >> 64) as i128;
                (range.start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(range: &Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        // 24 mantissa bits → uniform in [0, 1) without rounding to 1.0.
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        let v = range.start + (range.end - range.start) * unit;
        if v < range.end {
            v
        } else {
            range.start
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(range: &Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = range.start + (range.end - range.start) * unit;
        if v < range.end {
            v
        } else {
            range.start
        }
    }
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0.0f32..1.0), b.random_range(0.0f32..1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.random_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.random_range(0u32..1000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_range_is_half_open_and_covers() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut lo = f32::MAX;
        let mut hi = f32::MIN;
        for _ in 0..10_000 {
            let v = rng.random_range(0.0f32..100.0);
            assert!((0.0..100.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 5.0, "low tail unexplored: {lo}");
        assert!(hi > 95.0, "high tail unexplored: {hi}");
    }

    #[test]
    fn int_range_hits_all_small_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
