//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach a crates.io mirror, so this crate
//! vendors the subset of criterion's API the workspace's benches use
//! and backs it with a simple but honest wall-clock harness:
//!
//! * warm-up iterations, then `sample_size` timed samples per bench;
//! * median / min / max per-iteration time, plus elements-per-second
//!   when a [`Throughput`] was declared;
//! * `--test` (as passed by `cargo test` to `harness = false` targets)
//!   and `--quick` run every bench body exactly once and skip timing;
//! * a positional substring filter, like `cargo bench -- <filter>`.
//!
//! There are no plots, no saved baselines and no statistical regression
//! tests — results print to stdout.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work behind it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs one benchmark body repeatedly under timing.
pub struct Bencher<'a> {
    samples: usize,
    test_mode: bool,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    median: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher<'_> {
    /// Time `routine`, called once per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: one untimed call (fills caches, faults pages).
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
        }
        times.sort();
        *self.result = Some(Sample {
            median: times[times.len() / 2],
            min: times[0],
            max: times[times.len() - 1],
        });
    }
}

/// Entry point; create via `Criterion::default()`.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--quick" => test_mode = true,
                // Flags cargo's test/bench front-ends pass through that
                // have no analogue here are ignored.
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 100,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named set of related benchmarks sharing throughput/sample config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(&id, |b| f(b, input));
    }

    fn run(&mut self, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher<'_>)) {
        let full_id = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if !self.criterion.matches(&full_id) {
            return;
        }
        if self.criterion.test_mode {
            let mut result = None;
            let mut b = Bencher {
                samples: 0,
                test_mode: true,
                result: &mut result,
            };
            f(&mut b);
            println!("{full_id}: ok (test mode)");
            return;
        }
        let mut result = None;
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: false,
            result: &mut result,
        };
        f(&mut b);
        match result {
            Some(s) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) => {
                        format!(
                            "  {:>12.3} Melem/s",
                            n as f64 / s.median.as_secs_f64() / 1e6
                        )
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!(
                            "  {:>12.3} MiB/s",
                            n as f64 / s.median.as_secs_f64() / (1 << 20) as f64
                        )
                    }
                    None => String::new(),
                };
                println!(
                    "{full_id:<48} median {:>12?}  (min {:>12?}, max {:>12?}){rate}",
                    s.median, s.min, s.max
                );
            }
            None => println!("{full_id}: no measurement (b.iter was not called)"),
        }
    }

    pub fn finish(self) {}
}

/// Group benchmark functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_reports() {
        let mut c = Criterion {
            filter: None,
            test_mode: false,
        };
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(1000));
        g.sample_size(5);
        let mut ran = 0u32;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        g.finish();
        // 5 samples + 1 warm-up.
        assert_eq!(ran, 6);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("other".into()),
            test_mode: false,
        };
        let mut g = c.benchmark_group("demo");
        let mut ran = false;
        g.bench_function("spin", |b| b.iter(|| ran = true));
        g.finish();
        assert!(!ran);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut ran = 0u32;
        c.bench_function("once", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 42).id, "f/42");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
