//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crates.io mirror, so this crate
//! vendors the *subset* of proptest's API the workspace uses:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`strategy::Strategy`] with `prop_map`,
//! * range strategies over integers and floats, [`arbitrary::any`],
//!   [`sample::select`], [`collection::vec`], array-of-strategy and
//!   [`strategy::Just`].
//!
//! Semantics differ from upstream in two deliberate ways: inputs are
//! generated from a deterministic per-test SplitMix64 stream (seeded
//! from the test name) rather than an entropy source, and there is no
//! shrinking — a failing case panics with the generated inputs visible
//! in the assertion message. Both are acceptable for this workspace:
//! the suite relies on breadth of cases, not on minimal
//! counterexamples, and determinism makes CI failures reproducible.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    // `&S` is a strategy wherever `S` is, so strategies can be reused
    // across macro iterations without cloning.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            let v = self.start + (self.end - self.start) * unit;
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = self.start + (self.end - self.start) * unit;
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|i| self[i].generate(rng))
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident / $i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(S0 / 0);
    tuple_strategy!(S0 / 0, S1 / 1);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the whole domain of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among a fixed set of options.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select() needs at least one option");
            let idx = ((rng.next_u64() as u128 * self.0.len() as u128) >> 64) as usize;
            self.0[idx].clone()
        }
    }

    /// Choose one of `options` uniformly at random.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.start < self.len.end {
                self.len.start
                    + (((rng.next_u64() as u128 * (self.len.end - self.len.start) as u128) >> 64)
                        as usize)
            } else {
                self.len.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len_range)` — a vector of `element`s.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (FNV-1a), so every test gets a
        /// distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the tier-1 suite quick
            // while still exercising meaningful input diversity.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Assert inside a property; panics with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property; panics with both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declare property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Upstream's prelude re-exports the crate under the name `prop`
    /// so `prop::collection::vec` / `prop::sample::select` resolve.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in -5i32..5, f in 0.25f32..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn composite_strategies_generate(
            v in prop::collection::vec(0u64..100, 0..8),
            pick in prop::sample::select(vec![1u32, 2, 3]),
            arr in [0u8..4, 0u8..4, 0u8..4],
            mapped in (0u32..10).prop_map(|x| x * 2),
            b in any::<bool>(),
        ) {
            prop_assert!(v.len() < 8 && v.iter().all(|&e| e < 100));
            prop_assert!([1, 2, 3].contains(&pick));
            prop_assert!(arr.iter().all(|&e| e < 4));
            prop_assert_eq!(mapped % 2, 0);
            let _ = b;
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let mut c = crate::test_runner::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
