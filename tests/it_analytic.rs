//! The analytic ⇔ functional contract: for full launches, the closed-form
//! profiles must reproduce the simulator's measured access tallies field
//! by field (data-independent counters exactly, data-dependent ones
//! within tolerance).

use gpu_sim::DeviceConfig;
use tbs_core::analytic::profiles::{predicted_tally, InputPath, KernelSpec, OutputPath, Workload};
use tbs_core::kernels::IntraMode;
use tbs_integration::{assert_close, assert_exact_fields, run_functional};

fn check(wl: Workload, spec: KernelSpec) {
    let cfg = DeviceConfig::titan_x();
    let name = format!(
        "{}/{}/{:?} n={} b={}",
        spec.input.name(),
        spec.output.name(),
        spec.intra,
        wl.n,
        wl.b
    );
    let measured = run_functional(&wl, &spec, &cfg);
    let predicted = predicted_tally(&wl, &spec, &cfg);
    assert_exact_fields(&name, &measured.tally, &predicted);
    // Data-dependent / cache-state fields: within tolerance. Global
    // atomics make sector counts depend on the *distance distribution*
    // (bell-shaped for uniform points, so fewer distinct buckets per warp
    // than the uniform-bucket estimate) — hence the wider bound when a
    // global histogram is in play.
    let sector_tol = if matches!(spec.output, OutputPath::GlobalHistogram { .. }) {
        0.25
    } else {
        0.15
    };
    assert_close(
        &name,
        "global_sectors",
        measured.tally.global_sectors(),
        predicted.global_sectors(),
        sector_tol,
    );
    assert_close(
        &name,
        "dram_sectors",
        measured.tally.dram_sectors,
        predicted.dram_sectors,
        0.2,
    );
    assert_close(
        &name,
        "roc_total_sectors",
        measured.tally.roc_hit_sectors + measured.tally.roc_miss_sectors,
        predicted.roc_hit_sectors + predicted.roc_miss_sectors,
        0.2,
    );
    assert_close(
        &name,
        "shared_transactions",
        measured.tally.shared_transactions,
        predicted.shared_transactions,
        0.25,
    );
    assert_close(
        &name,
        "shared_atomic_serial",
        measured.tally.shared_atomic_serial,
        predicted.shared_atomic_serial,
        0.35,
    );
    assert_close(
        &name,
        "global_atomic_serial",
        measured.tally.global_atomic_serial,
        predicted.global_atomic_serial,
        0.35,
    );
}

fn wl(n: u32, b: u32) -> Workload {
    Workload {
        n,
        b,
        dims: 3,
        dist_cost: 7,
    }
}

#[test]
fn naive_count() {
    check(
        wl(512, 64),
        KernelSpec::new(InputPath::Naive, OutputPath::RegisterCount),
    );
}

#[test]
fn naive_global_hist() {
    check(
        wl(512, 64),
        KernelSpec::new(
            InputPath::Naive,
            OutputPath::GlobalHistogram { buckets: 128 },
        ),
    );
}

#[test]
fn naive_shared_hist() {
    check(
        wl(512, 64),
        KernelSpec::new(
            InputPath::Naive,
            OutputPath::SharedHistogram { buckets: 200 },
        ),
    );
}

#[test]
fn register_shm_count() {
    check(
        wl(512, 64),
        KernelSpec::new(InputPath::RegisterShm, OutputPath::RegisterCount),
    );
}

#[test]
fn register_shm_count_bigger_blocks() {
    check(
        wl(1024, 128),
        KernelSpec::new(InputPath::RegisterShm, OutputPath::RegisterCount),
    );
}

#[test]
fn register_shm_shared_hist() {
    check(
        wl(512, 64),
        KernelSpec::new(
            InputPath::RegisterShm,
            OutputPath::SharedHistogram { buckets: 100 },
        ),
    );
}

#[test]
fn register_shm_load_balanced() {
    check(
        wl(512, 64),
        KernelSpec::new(InputPath::RegisterShm, OutputPath::RegisterCount)
            .with_intra(IntraMode::LoadBalanced),
    );
}

#[test]
fn shm_shm_count() {
    check(
        wl(512, 64),
        KernelSpec::new(InputPath::ShmShm, OutputPath::RegisterCount),
    );
}

#[test]
fn shm_shm_load_balanced_hist() {
    check(
        wl(512, 64),
        KernelSpec::new(
            InputPath::ShmShm,
            OutputPath::SharedHistogram { buckets: 64 },
        )
        .with_intra(IntraMode::LoadBalanced),
    );
}

#[test]
fn register_roc_count() {
    check(
        wl(512, 64),
        KernelSpec::new(InputPath::RegisterRoc, OutputPath::RegisterCount),
    );
}

#[test]
fn register_roc_shared_hist() {
    check(
        wl(768, 128),
        KernelSpec::new(
            InputPath::RegisterRoc,
            OutputPath::SharedHistogram { buckets: 256 },
        ),
    );
}

#[test]
fn register_roc_load_balanced() {
    check(
        wl(512, 64),
        KernelSpec::new(InputPath::RegisterRoc, OutputPath::RegisterCount)
            .with_intra(IntraMode::LoadBalanced),
    );
}

#[test]
fn shuffle_count() {
    check(
        wl(512, 64),
        KernelSpec::new(InputPath::Shuffle, OutputPath::RegisterCount),
    );
}

#[test]
fn shuffle_shared_hist() {
    check(
        wl(512, 64),
        KernelSpec::new(
            InputPath::Shuffle,
            OutputPath::SharedHistogram { buckets: 96 },
        ),
    );
}

#[test]
fn global_hist_on_tiled_kernels() {
    check(
        wl(512, 64),
        KernelSpec::new(
            InputPath::RegisterShm,
            OutputPath::GlobalHistogram { buckets: 512 },
        ),
    );
}

// ---- cross-architecture validation: the exactness contract is not
// Titan-X-specific (instruction counts are architecture-independent;
// only cache behaviour and timing change) ----

fn check_on(cfg: &DeviceConfig, spec: KernelSpec) {
    let wl = Workload {
        n: 512,
        b: 64,
        dims: 3,
        dist_cost: 7,
    };
    let name = format!("{}@{}", spec.input.name(), cfg.name);
    let measured = run_functional(&wl, &spec, cfg);
    let predicted = predicted_tally(&wl, &spec, cfg);
    assert_exact_fields(&name, &measured.tally, &predicted);
}

#[test]
fn analytic_holds_on_kepler() {
    let cfg = DeviceConfig::kepler_k40();
    check_on(
        &cfg,
        KernelSpec::new(InputPath::RegisterShm, OutputPath::RegisterCount),
    );
    check_on(
        &cfg,
        KernelSpec::new(
            InputPath::Shuffle,
            OutputPath::SharedHistogram { buckets: 64 },
        ),
    );
}

#[test]
fn analytic_holds_on_fermi() {
    let cfg = DeviceConfig::fermi_gtx580();
    check_on(
        &cfg,
        KernelSpec::new(InputPath::RegisterShm, OutputPath::RegisterCount),
    );
    check_on(
        &cfg,
        KernelSpec::new(
            InputPath::Naive,
            OutputPath::GlobalHistogram { buckets: 128 },
        ),
    );
}

// ---- bipartite cross-kernel closed form ----

#[test]
fn cross_kernel_analytic_matches_functional() {
    use gpu_sim::Device;
    use tbs_core::analytic::predicted_cross_tally;
    use tbs_core::kernels::{pair_launch, CrossShmKernel};
    use tbs_core::output::{CountWithinRadius, SharedHistogramAction};
    use tbs_core::{Euclidean, HistogramSpec};
    use tbs_integration::lcg_points;

    let cfg = DeviceConfig::titan_x();
    let left = lcg_points(256, 3);
    let right = lcg_points(320, 4);

    // Register-count output.
    {
        let mut dev = Device::new(cfg.clone());
        let (dl, dr) = (left.upload(&mut dev), right.upload(&mut dev));
        let lc = pair_launch(dl.n, 64);
        let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
        let k = CrossShmKernel::new(
            dl,
            dr,
            Euclidean,
            CountWithinRadius { radius: 30.0, out },
            64,
        );
        let run = dev.launch(&k, lc);
        let predicted = predicted_cross_tally(256, 320, 64, 3, 7, OutputPath::RegisterCount, &cfg);
        assert_exact_fields("cross/count", &run.tally, &predicted);
    }
    // Privatized-histogram output.
    {
        let mut dev = Device::new(cfg.clone());
        let (dl, dr) = (left.upload(&mut dev), right.upload(&mut dev));
        let lc = pair_launch(dl.n, 64);
        let spec = HistogramSpec::new(128, 100.0 * 1.7320508);
        let private = dev.alloc_u32_zeroed((lc.grid_dim * 128) as usize);
        let k = CrossShmKernel::new(
            dl,
            dr,
            Euclidean,
            SharedHistogramAction { spec, private },
            64,
        );
        let run = dev.launch(&k, lc);
        let predicted = predicted_cross_tally(
            256,
            320,
            64,
            3,
            7,
            OutputPath::SharedHistogram { buckets: 128 },
            &cfg,
        );
        assert_exact_fields("cross/hist", &run.tally, &predicted);
    }
}
