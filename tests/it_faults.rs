//! Simulated-fault behaviour: the engine must surface kernel bugs the way
//! CUDA surfaces them, not silently corrupt results.

use gpu_sim::prelude::*;
use gpu_sim::SimError;

struct OobKernel {
    buf: BufF32,
}
impl Kernel for OobKernel {
    fn name(&self) -> &'static str {
        "oob"
    }
    fn resources(&self) -> KernelResources {
        KernelResources::new(8, 0)
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let buf = self.buf;
        blk.for_each_warp(|w| {
            let idx = [1_000_000u32; 32];
            w.global_load_f32(buf, &idx, Mask::FULL);
        });
    }
}

#[test]
fn out_of_bounds_surfaces_as_error_with_context() {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let buf = dev.alloc_f32(vec![0.0; 16]);
    let err = dev
        .try_launch(&OobKernel { buf }, LaunchConfig::new(4, 64))
        .unwrap_err();
    match err {
        SimError::OutOfBounds { what, index, len } => {
            assert!(what.contains("global"));
            assert_eq!(index, 1_000_000);
            assert_eq!(len, 16);
        }
        other => panic!("wrong fault: {other:?}"),
    }
}

#[test]
#[should_panic(expected = "faulted")]
fn launch_panics_on_fault() {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let buf = dev.alloc_f32(vec![0.0; 16]);
    dev.launch(&OobKernel { buf }, LaunchConfig::new(1, 32));
}

struct ShmOob;
impl Kernel for ShmOob {
    fn name(&self) -> &'static str {
        "shm-oob"
    }
    fn resources(&self) -> KernelResources {
        KernelResources::new(8, 64)
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let arr = blk.shared_alloc_u32(16);
        blk.for_each_warp(|w| {
            w.shared_atomic_add_u32(arr, &[999; 32], &[1; 32], Mask::FULL);
        });
    }
}

#[test]
fn shared_out_of_bounds_is_caught() {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let err = dev
        .try_launch(&ShmOob, LaunchConfig::new(1, 32))
        .unwrap_err();
    assert!(matches!(err, SimError::OutOfBounds { .. }));
}

struct ShmHog;
impl Kernel for ShmHog {
    fn name(&self) -> &'static str {
        "shm-hog"
    }
    fn resources(&self) -> KernelResources {
        KernelResources::new(8, 48 * 1024)
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        // 13,000 u32 = 52 KB > the 48 KB per-block limit.
        blk.shared_alloc_u32(13_000);
    }
}

#[test]
fn shared_overflow_is_caught_at_allocation() {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let err = dev
        .try_launch(&ShmHog, LaunchConfig::new(1, 32))
        .unwrap_err();
    assert!(matches!(err, SimError::SharedMemOverflow { .. }), "{err:?}");
}

#[test]
fn invalid_launches_are_rejected_before_execution() {
    struct Noop;
    impl Kernel for Noop {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn resources(&self) -> KernelResources {
            KernelResources::new(8, 0)
        }
        fn run_block(&self, _blk: &mut BlockCtx<'_>) {
            panic!("must not execute");
        }
    }
    let mut dev = Device::new(DeviceConfig::titan_x());
    // An empty grid is a valid no-op launch — Noop panics if any block
    // actually executes, so success here proves nothing ran.
    let run = dev
        .try_launch(&Noop, LaunchConfig::new(0, 32))
        .expect("empty launch is a no-op");
    assert_eq!(run.tally.blocks_executed, 0);
    assert!(matches!(
        dev.try_launch(&Noop, LaunchConfig::new(1, 0)),
        Err(SimError::InvalidLaunch { .. })
    ));
    assert!(matches!(
        dev.try_launch(&Noop, LaunchConfig::new(1, 4096)),
        Err(SimError::InvalidLaunch { .. })
    ));
}

#[test]
fn faulted_launch_leaves_device_usable() {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let buf = dev.alloc_f32(vec![1.0; 16]);
    let _ = dev.try_launch(&OobKernel { buf }, LaunchConfig::new(1, 32));
    // Device state is still coherent: buffers readable, new launches run.
    assert_eq!(dev.f32_slice(buf)[0], 1.0);
    struct Fill(BufF32);
    impl Kernel for Fill {
        fn name(&self) -> &'static str {
            "fill"
        }
        fn resources(&self) -> KernelResources {
            KernelResources::new(8, 0)
        }
        fn run_block(&self, blk: &mut BlockCtx<'_>) {
            let b = self.0;
            blk.for_each_warp(|w| {
                let tid = w.thread_ids();
                let m = w.mask_lt(&tid, 16);
                w.global_store_f32(b, &tid, &[7.0; 32], m);
            });
        }
    }
    dev.launch(&Fill(buf), LaunchConfig::new(1, 32));
    assert_eq!(dev.f32_slice(buf)[5], 7.0);
}
