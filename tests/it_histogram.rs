//! Histogram edge-case behavior through a real warp context: the
//! device-side bucket computation must follow the CUDA
//! `__float2uint_rz` convention for exceptional lanes (NaN and negative
//! values saturate to 0, +inf clamps into the last bucket), because
//! that is what the hardware the simulator models would do.

use gpu_sim::prelude::*;
use tbs_core::histogram::HistogramSpec;

/// Writes `bucket_lanes(d)` for one warp of probe distances.
struct BucketProbe {
    spec: HistogramSpec,
    dist: BufF32,
    out: BufU32,
}

impl Kernel for BucketProbe {
    fn name(&self) -> &'static str {
        "bucket-probe"
    }
    fn resources(&self) -> KernelResources {
        KernelResources::new(8, 0)
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let (spec, dist, out) = (self.spec, self.dist, self.out);
        blk.for_each_warp(|w| {
            let tid = w.thread_ids();
            let d = w.global_load_f32(dist, &tid, Mask::FULL);
            let b = spec.bucket_lanes(w, &d, Mask::FULL);
            w.global_store_u32(out, &tid, &b, Mask::FULL);
        });
    }
}

#[test]
fn nan_lanes_follow_device_convention() {
    let spec = HistogramSpec::new(10, 10.0);
    let mut probes = vec![0.5f32; 32];
    probes[3] = f32::NAN;
    probes[7] = -4.0;
    probes[11] = f32::INFINITY;
    probes[15] = 9.99;
    let mut dev = Device::new(DeviceConfig::titan_x());
    let dist = dev.alloc_f32(probes);
    let out = dev.alloc_u32(vec![u32::MAX; 32]);
    let k = BucketProbe { spec, dist, out };
    dev.try_launch(&k, LaunchConfig::new(1, 32))
        .expect("launch");
    let got = dev.u32_slice(out);
    assert_eq!(got[3], 0, "NaN lane must saturate to bucket 0");
    assert_eq!(got[7], 0, "negative lane must saturate to bucket 0");
    assert_eq!(got[11], 9, "+inf lane must clamp into the last bucket");
    assert_eq!(got[15], 9, "near-edge lane bins normally");
    assert_eq!(got[0], 0, "ordinary lane bins normally");
}
