//! Property-based cross-crate invariants.

use gpu_sim::config::ExecMode;
use gpu_sim::{Device, DeviceConfig};
use proptest::prelude::*;
use tbs_apps::{sdh_gpu, PairwisePlan, SdhOutputMode};
use tbs_core::analytic::profiles::{predicted_run, predicted_tally, KernelSpec, Workload};
use tbs_core::analytic::{InputPath, OutputPath};
use tbs_core::kernels::IntraMode;
use tbs_core::HistogramSpec;
use tbs_integration::{assert_exact_fields, lcg_points, run_functional};

fn input_strategy() -> impl Strategy<Value = InputPath> {
    prop::sample::select(vec![
        InputPath::Naive,
        InputPath::ShmShm,
        InputPath::RegisterShm,
        InputPath::RegisterRoc,
        InputPath::Shuffle,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every (kernel, size, buckets, intra) combination bins exactly
    /// N(N−1)/2 observations.
    #[test]
    fn histogram_total_is_always_the_pair_count(
        input in input_strategy(),
        n in 40usize..400,
        buckets in 2u32..300,
        lb in any::<bool>(),
    ) {
        let pts = lcg_points(n, 31);
        let spec = HistogramSpec::new(buckets, 100.0 * 1.7320508);
        let mut dev = Device::new(DeviceConfig::titan_x());
        let intra = if lb { IntraMode::LoadBalanced } else { IntraMode::Regular };
        let plan = PairwisePlan { input, intra, block_size: 64 };
        let got = sdh_gpu(&mut dev, &pts, spec, plan, SdhOutputMode::Privatized).expect("launch");
        prop_assert_eq!(got.histogram.total(), (n * (n - 1) / 2) as u64);
    }

    /// The analytic model's exactness contract holds for arbitrary
    /// full-block workloads.
    #[test]
    fn analytic_equals_functional_for_random_full_workloads(
        blocks in 2u32..8,
        b in prop::sample::select(vec![32u32, 64]),
        input in input_strategy(),
        buckets in prop::sample::select(vec![64u32, 200]),
        shared_out in any::<bool>(),
    ) {
        let wl = Workload { n: blocks * b, b, dims: 3, dist_cost: 7 };
        let output = if shared_out {
            OutputPath::SharedHistogram { buckets }
        } else {
            OutputPath::RegisterCount
        };
        let spec = KernelSpec::new(input, output);
        let cfg = DeviceConfig::titan_x();
        let measured = run_functional(&wl, &spec, &cfg);
        let predicted = predicted_tally(&wl, &spec, &cfg);
        assert_exact_fields(
            &format!("{}/{} n={} b={}", spec.input.name(), spec.output.name(), wl.n, wl.b),
            &measured.tally,
            &predicted,
        );
    }

    /// The parallel block-execution engine is bit-identical to the
    /// sequential reference: same histogram, same count, and the same
    /// instrumented tally (sector traffic, atomic serialization, replay
    /// counts) for every kernel variant × output mode over random
    /// problem and block sizes.
    #[test]
    fn parallel_engine_matches_sequential_bit_for_bit(
        input in input_strategy(),
        n in 0usize..500,
        block in prop::sample::select(vec![32u32, 64, 96, 128]),
        buckets in 2u32..300,
        threads in 2usize..6,
        privatized in any::<bool>(),
        lb in any::<bool>(),
    ) {
        let pts = lcg_points(n, 47);
        let spec = HistogramSpec::new(buckets, 100.0 * 1.7320508);
        let intra = if lb { IntraMode::LoadBalanced } else { IntraMode::Regular };
        let plan = PairwisePlan { input, intra, block_size: block };
        let output = if privatized {
            SdhOutputMode::Privatized
        } else {
            SdhOutputMode::GlobalAtomics
        };

        let mut seq_dev = Device::new(
            DeviceConfig::titan_x().with_exec_mode(ExecMode::Sequential),
        );
        let seq = sdh_gpu(&mut seq_dev, &pts, spec, plan, output).expect("sequential");

        let mut par_dev = Device::new(
            DeviceConfig::titan_x().with_exec_mode(ExecMode::Parallel { threads }),
        );
        let par = sdh_gpu(&mut par_dev, &pts, spec, plan, output).expect("parallel");

        prop_assert_eq!(&seq.histogram, &par.histogram);
        prop_assert_eq!(&seq.pair_run.tally, &par.pair_run.tally);
        prop_assert_eq!(seq.pair_run.timing.seconds, par.pair_run.timing.seconds);
        prop_assert_eq!(
            seq.reduce_run.as_ref().map(|r| &r.tally),
            par.reduce_run.as_ref().map(|r| &r.tally)
        );
    }

    /// Type-I (scalar count) outputs are likewise identical across
    /// execution modes.
    #[test]
    fn parallel_pcf_matches_sequential(
        input in input_strategy(),
        n in 0usize..400,
        radius in 5.0f32..120.0,
        threads in 2usize..5,
    ) {
        let pts = lcg_points(n, 53);
        let plan = PairwisePlan { input, intra: IntraMode::Regular, block_size: 64 };
        let mut seq_dev = Device::new(
            DeviceConfig::titan_x().with_exec_mode(ExecMode::Sequential),
        );
        let seq = tbs_apps::pcf_gpu(&mut seq_dev, &pts, radius, plan).expect("sequential");
        let mut par_dev = Device::new(
            DeviceConfig::titan_x().with_exec_mode(ExecMode::Parallel { threads }),
        );
        let par = tbs_apps::pcf_gpu(&mut par_dev, &pts, radius, plan).expect("parallel");
        prop_assert_eq!(seq.count, par.count);
        prop_assert_eq!(&seq.run.tally, &par.run.tally);
    }

    /// Predicted time is monotone in N for a fixed kernel.
    #[test]
    fn predicted_time_is_monotone_in_n(
        base in 32u32..256,
        factor in 2u32..6,
        input in input_strategy(),
    ) {
        let cfg = DeviceConfig::titan_x();
        let b = 1024;
        let spec = KernelSpec::new(input, OutputPath::RegisterCount);
        let small = Workload { n: base * b, b, dims: 3, dist_cost: 7 };
        let large = Workload { n: base * factor * b, b, dims: 3, dist_cost: 7 };
        let ts = predicted_run(&small, &spec, &cfg).seconds();
        let tl = predicted_run(&large, &spec, &cfg).seconds();
        prop_assert!(tl > ts, "{} -> {}", ts, tl);
    }

    /// Simulated time is positive and finite for every configuration.
    #[test]
    fn predictions_are_finite_and_positive(
        blocks in 1u32..2000,
        input in input_strategy(),
        buckets in 16u32..10_000,
    ) {
        let cfg = DeviceConfig::titan_x();
        let wl = Workload { n: blocks * 1024, b: 1024, dims: 3, dist_cost: 7 };
        let run = predicted_run(
            &wl,
            &KernelSpec::new(input, OutputPath::SharedHistogram { buckets }),
            &cfg,
        );
        prop_assert!(run.timing.seconds.is_finite());
        prop_assert!(run.timing.seconds > 0.0);
        prop_assert!(run.occupancy.occupancy > 0.0 && run.occupancy.occupancy <= 1.0);
    }
}
