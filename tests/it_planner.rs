//! End-to-end planner validation: the plan chosen analytically must
//! execute correctly, and its predicted ranking must be consistent with
//! functional simulation.

use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{sdh_gpu, PairwisePlan, SdhOutputMode};
use tbs_core::analytic::OutputPath;
use tbs_core::plan::{choose_plan, ProblemOutput, ProblemSpec};
use tbs_core::HistogramSpec;
use tbs_cpu::sdh_reference;
use tbs_datagen::{box_diagonal, uniform_points, DEFAULT_BOX};

#[test]
fn chosen_plan_executes_and_matches_reference() {
    let n = 512u32;
    let buckets = 128u32;
    let cfg = DeviceConfig::titan_x();
    let problem = ProblemSpec {
        n,
        dims: 3,
        dist_cost: 7,
        output: ProblemOutput::Histogram { buckets },
    };
    let plan = choose_plan(&problem, &cfg);

    let pts = uniform_points::<3>(n as usize, DEFAULT_BOX, 41);
    let spec = HistogramSpec::new(buckets, box_diagonal(DEFAULT_BOX, 3));
    let output = if matches!(plan.spec.output, OutputPath::SharedHistogram { .. }) {
        SdhOutputMode::Privatized
    } else {
        SdhOutputMode::GlobalAtomics
    };
    let mut dev = Device::new(cfg);
    let pairwise = PairwisePlan {
        input: plan.spec.input,
        intra: plan.spec.intra,
        block_size: plan.block_size.min(n),
    };
    let got = sdh_gpu(&mut dev, &pts, spec, pairwise, output).expect("launch");
    assert_eq!(got.histogram, sdh_reference(&pts, spec));
}

#[test]
fn predicted_ranking_matches_functional_ranking_for_output_modes() {
    // The planner's core claim at paper scale: privatized output beats
    // global atomics. Verify the *functional* simulator agrees at a size
    // it can execute.
    let n = 2048usize;
    let buckets = 256u32;
    let pts = uniform_points::<3>(n, DEFAULT_BOX, 43);
    let spec = HistogramSpec::new(buckets, box_diagonal(DEFAULT_BOX, 3));
    let plan = PairwisePlan::register_shm(128);
    let mut d1 = Device::new(DeviceConfig::titan_x());
    let privatized = sdh_gpu(&mut d1, &pts, spec, plan, SdhOutputMode::Privatized).expect("launch");
    let mut d2 = Device::new(DeviceConfig::titan_x());
    let global = sdh_gpu(&mut d2, &pts, spec, plan, SdhOutputMode::GlobalAtomics).expect("launch");
    assert_eq!(privatized.histogram, global.histogram);
    assert!(
        global.total_seconds() > privatized.total_seconds(),
        "functional sim must agree with the planner: global {} vs privatized {}",
        global.total_seconds(),
        privatized.total_seconds()
    );
}

#[test]
fn planner_prefers_load_balanced_intra() {
    // LB strictly dominates regular intra in the model (same work, no
    // divergence), so the best plan should use it.
    let cfg = DeviceConfig::titan_x();
    let problem = ProblemSpec {
        n: 256 * 1024,
        dims: 3,
        dist_cost: 7,
        output: ProblemOutput::Scalar,
    };
    let plan = choose_plan(&problem, &cfg);
    assert_eq!(plan.spec.intra, tbs_core::kernels::IntraMode::LoadBalanced);
}
