//! Metric-space properties of the distance functions, checked on random
//! data, plus GPU-vs-host evaluation consistency.

use gpu_sim::{Device, DeviceConfig};
use proptest::prelude::*;
use tbs_apps::{sdh_gpu_with, PairwisePlan, SdhOutputMode};
use tbs_core::distance::{
    CosineDissimilarity, DistanceKernel, Euclidean, Manhattan, PeriodicEuclidean,
};
use tbs_core::HistogramSpec;
use tbs_integration::lcg_points;

fn coord() -> impl Strategy<Value = f32> {
    (-1000i32..1000).prop_map(|x| x as f32 / 10.0)
}

fn point3() -> impl Strategy<Value = [f32; 3]> {
    [coord(), coord(), coord()]
}

proptest! {
    #[test]
    fn euclidean_is_a_metric(a in point3(), b in point3(), c in point3()) {
        let e = Euclidean;
        let d = |x: &[f32; 3], y: &[f32; 3]| <Euclidean as DistanceKernel<3>>::eval_host(&e, x, y);
        prop_assert!(d(&a, &b) >= 0.0);
        prop_assert!((d(&a, &b) - d(&b, &a)).abs() < 1e-4);
        prop_assert!((d(&a, &a)).abs() < 1e-4);
        // Triangle inequality with float slack.
        prop_assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c) + 1e-3);
    }

    #[test]
    fn manhattan_is_a_metric(a in point3(), b in point3(), c in point3()) {
        let m = Manhattan;
        let d = |x: &[f32; 3], y: &[f32; 3]| <Manhattan as DistanceKernel<3>>::eval_host(&m, x, y);
        prop_assert!(d(&a, &b) >= 0.0);
        prop_assert!((d(&a, &b) - d(&b, &a)).abs() < 1e-3);
        prop_assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c) + 1e-2);
        // L1 dominates L2.
        let e = <Euclidean as DistanceKernel<3>>::eval_host(&Euclidean, &a, &b);
        prop_assert!(d(&a, &b) >= e - 1e-3);
    }

    #[test]
    fn periodic_euclidean_is_symmetric_and_bounded(
        ax in 0.0f32..100.0, ay in 0.0f32..100.0, az in 0.0f32..100.0,
        bx in 0.0f32..100.0, by in 0.0f32..100.0, bz in 0.0f32..100.0,
    ) {
        let pe = PeriodicEuclidean::new(100.0);
        let (a, b) = ([ax, ay, az], [bx, by, bz]);
        let dab = <PeriodicEuclidean as DistanceKernel<3>>::eval_host(&pe, &a, &b);
        let dba = <PeriodicEuclidean as DistanceKernel<3>>::eval_host(&pe, &b, &a);
        prop_assert!((dab - dba).abs() < 1e-3);
        // Bounded by the half-box diagonal, and by the plain distance.
        prop_assert!(dab <= 50.0 * 3f32.sqrt() + 1e-3);
        let plain = <Euclidean as DistanceKernel<3>>::eval_host(&Euclidean, &a, &b);
        prop_assert!(dab <= plain + 1e-3);
    }

    #[test]
    fn cosine_is_bounded(a in point3(), b in point3()) {
        let d = <CosineDissimilarity as DistanceKernel<3>>::eval_host(&CosineDissimilarity, &a, &b);
        prop_assert!((-1e-4..=2.0001).contains(&d));
    }
}

#[test]
fn gpu_histograms_agree_across_distance_functions() {
    // The SDH pipeline is distance-agnostic: run it under three distance
    // functions and check each against a host-side recomputation.
    let pts = lcg_points(300, 77);
    let n = pts.len();
    let check = |dist_name: &str,
                 host: &dyn Fn(&[f32; 3], &[f32; 3]) -> f32,
                 run: &dyn Fn(&mut Device) -> tbs_apps::SdhResult,
                 max: f32| {
        let spec = HistogramSpec::new(50, max);
        let mut expect = tbs_core::Histogram::zeroed(50);
        for i in 0..n {
            for j in (i + 1)..n {
                expect.add(spec.bucket_of(host(&pts.point(i), &pts.point(j))));
            }
        }
        let mut dev = Device::new(DeviceConfig::titan_x());
        let got = run(&mut dev);
        assert_eq!(got.histogram, expect, "{dist_name}");
    };

    let spec_e = HistogramSpec::new(50, 100.0 * 1.7320508);
    check(
        "euclidean",
        &|a, b| <Euclidean as DistanceKernel<3>>::eval_host(&Euclidean, a, b),
        &|dev| {
            sdh_gpu_with(
                dev,
                &pts,
                Euclidean,
                spec_e,
                PairwisePlan::register_shm(64),
                SdhOutputMode::Privatized,
            )
            .expect("launch")
        },
        100.0 * 1.7320508,
    );
    let pe = PeriodicEuclidean::new(100.0);
    let spec_p = HistogramSpec::new(50, 100.0);
    check(
        "periodic",
        &|a, b| <PeriodicEuclidean as DistanceKernel<3>>::eval_host(&pe, a, b),
        &|dev| {
            sdh_gpu_with(
                dev,
                &pts,
                pe,
                spec_p,
                PairwisePlan::register_shm(64),
                SdhOutputMode::Privatized,
            )
            .expect("launch")
        },
        100.0,
    );
    let spec_m = HistogramSpec::new(50, 300.0);
    check(
        "manhattan",
        &|a, b| <Manhattan as DistanceKernel<3>>::eval_host(&Manhattan, a, b),
        &|dev| {
            sdh_gpu_with(
                dev,
                &pts,
                Manhattan,
                spec_m,
                PairwisePlan::register_shm(64),
                SdhOutputMode::Privatized,
            )
            .expect("launch")
        },
        300.0,
    );
}
