//! Cross-implementation validation: simulated-GPU results must equal the
//! CPU reference bit-for-bit (histograms are integer counts).

use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{pcf_gpu, sdh_gpu, PairwisePlan, SdhOutputMode};
use tbs_core::analytic::InputPath;
use tbs_core::kernels::IntraMode;
use tbs_core::HistogramSpec;
use tbs_cpu::{pcf_reference, sdh_parallel, sdh_reference, CpuSdhConfig, Schedule};
use tbs_datagen::{box_diagonal, clustered_points, uniform_points, DEFAULT_BOX};

const ALL_INPUTS: [InputPath; 5] = [
    InputPath::Naive,
    InputPath::ShmShm,
    InputPath::RegisterShm,
    InputPath::RegisterRoc,
    InputPath::Shuffle,
];

#[test]
fn sdh_all_variants_match_cpu_on_uniform_data() {
    let pts = uniform_points::<3>(500, DEFAULT_BOX, 3);
    let spec = HistogramSpec::new(200, box_diagonal(DEFAULT_BOX, 3));
    let reference = sdh_reference(&pts, spec);
    for input in ALL_INPUTS {
        for output in [SdhOutputMode::Privatized, SdhOutputMode::GlobalAtomics] {
            let mut dev = Device::new(DeviceConfig::titan_x());
            let plan = PairwisePlan {
                input,
                intra: IntraMode::Regular,
                block_size: 64,
            };
            let got = sdh_gpu(&mut dev, &pts, spec, plan, output).expect("launch");
            assert_eq!(got.histogram, reference, "{input:?}/{output:?}");
        }
    }
}

#[test]
fn sdh_matches_cpu_on_clustered_data() {
    // Skewed data stresses atomic contention paths; results must be
    // identical regardless.
    let pts = clustered_points::<3>(600, DEFAULT_BOX, 3, 1.5, 17);
    let spec = HistogramSpec::new(128, box_diagonal(DEFAULT_BOX, 3));
    let reference = sdh_reference(&pts, spec);
    for input in [
        InputPath::RegisterShm,
        InputPath::RegisterRoc,
        InputPath::Shuffle,
    ] {
        let mut dev = Device::new(DeviceConfig::titan_x());
        let plan = PairwisePlan {
            input,
            intra: IntraMode::LoadBalanced,
            block_size: 128,
        };
        let got = sdh_gpu(&mut dev, &pts, spec, plan, SdhOutputMode::Privatized).expect("launch");
        assert_eq!(got.histogram, reference, "{input:?}");
    }
}

#[test]
fn cpu_parallel_and_gpu_agree_through_both_stacks() {
    let pts = uniform_points::<3>(700, DEFAULT_BOX, 21);
    let spec = HistogramSpec::new(64, box_diagonal(DEFAULT_BOX, 3));
    let cpu = sdh_parallel(
        &pts,
        spec,
        CpuSdhConfig {
            threads: 3,
            schedule: Schedule::Guided,
        },
    );
    let mut dev = Device::new(DeviceConfig::titan_x());
    let gpu = sdh_gpu(
        &mut dev,
        &pts,
        spec,
        PairwisePlan::register_shm(64),
        SdhOutputMode::Privatized,
    )
    .expect("launch");
    assert_eq!(cpu, gpu.histogram);
}

#[test]
fn pcf_matches_across_devices() {
    // Functional results are architecture-independent — only timing
    // changes between Fermi/Kepler/Maxwell.
    let pts = uniform_points::<3>(400, DEFAULT_BOX, 23);
    let expect = pcf_reference(&pts, 30.0);
    for cfg in [
        DeviceConfig::fermi_gtx580(),
        DeviceConfig::kepler_k40(),
        DeviceConfig::titan_x(),
    ] {
        let mut dev = Device::new(cfg);
        let got = pcf_gpu(&mut dev, &pts, 30.0, PairwisePlan::register_shm(64)).expect("launch");
        assert_eq!(got.count, expect);
    }
}

#[test]
fn fermi_runs_are_slower_than_maxwell() {
    let pts = uniform_points::<3>(2048, DEFAULT_BOX, 29);
    let mut fermi = Device::new(DeviceConfig::fermi_gtx580());
    let mut maxwell = Device::new(DeviceConfig::titan_x());
    let tf = pcf_gpu(&mut fermi, &pts, 20.0, PairwisePlan::register_shm(128)).expect("launch");
    let tm = pcf_gpu(&mut maxwell, &pts, 20.0, PairwisePlan::register_shm(128)).expect("launch");
    assert_eq!(tf.count, tm.count);
    assert!(
        tf.run.timing.seconds > tm.run.timing.seconds,
        "Fermi {} vs Maxwell {}",
        tf.run.timing.seconds,
        tm.run.timing.seconds
    );
}
