//! Shared helpers for the cross-crate integration tests.

use gpu_sim::{AccessTally, Device, DeviceConfig, KernelRun};
use tbs_core::analytic::profiles::{InputPath, KernelSpec, OutputPath, Workload};
use tbs_core::distance::Euclidean;
use tbs_core::histogram::HistogramSpec;
use tbs_core::kernels::{
    pair_launch, NaiveKernel, PairScope, RegisterRocKernel, RegisterShmKernel, ShmShmKernel,
    ShuffleKernel,
};
use tbs_core::output::{
    CountWithinRadius, GlobalHistogramAction, PairAction, SharedHistogramAction,
};
use tbs_core::point::SoaPoints;

/// Deterministic pseudo-random points in [0, 100)^3 (LCG; no rand dep
/// needed for reproducibility across crates).
pub fn lcg_points(n: usize, seed: u64) -> SoaPoints<3> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as u32 as f32) / (u32::MAX >> 1) as f32 * 100.0
    };
    SoaPoints::from_points(&(0..n).map(|_| [next(), next(), next()]).collect::<Vec<_>>())
}

/// Run the functional kernel corresponding to `spec` on `wl`-shaped data.
pub fn run_functional(wl: &Workload, spec: &KernelSpec, cfg: &DeviceConfig) -> KernelRun {
    assert_eq!(wl.dims, 3, "helper fixed at D=3");
    assert_eq!(wl.dist_cost, 7, "helper fixed at Euclidean cost");
    let pts = lcg_points(wl.n as usize, 42);
    let mut dev = Device::new(cfg.clone());
    let input = pts.upload(&mut dev);
    let lc = pair_launch(wl.n, wl.b);

    match spec.output {
        OutputPath::RegisterCount => {
            let out = dev.alloc_u64_zeroed(lc.total_threads() as usize);
            let action = CountWithinRadius { radius: 25.0, out };
            launch_input(&mut dev, wl, spec, input, action)
        }
        OutputPath::SharedHistogram { buckets } => {
            let spec_h = HistogramSpec::new(buckets, 100.0 * 1.7320508f32);
            let private = dev.alloc_u32_zeroed((lc.grid_dim * buckets) as usize);
            let action = SharedHistogramAction {
                spec: spec_h,
                private,
            };
            launch_input(&mut dev, wl, spec, input, action)
        }
        OutputPath::GlobalHistogram { buckets } => {
            let spec_h = HistogramSpec::new(buckets, 100.0 * 1.7320508f32);
            let out = dev.alloc_u64_zeroed(buckets as usize);
            let action = GlobalHistogramAction { spec: spec_h, out };
            launch_input(&mut dev, wl, spec, input, action)
        }
    }
}

fn launch_input<A: PairAction>(
    dev: &mut Device,
    wl: &Workload,
    spec: &KernelSpec,
    input: tbs_core::point::DeviceSoa<3>,
    action: A,
) -> KernelRun {
    let lc = pair_launch(wl.n, wl.b);
    let scope = PairScope::HalfPairs;
    match spec.input {
        InputPath::Naive => dev.launch(&NaiveKernel::new(input, Euclidean, action, scope), lc),
        InputPath::ShmShm => dev.launch(
            &ShmShmKernel::new(input, Euclidean, action, wl.b, scope, spec.intra),
            lc,
        ),
        InputPath::RegisterShm => dev.launch(
            &RegisterShmKernel::new(input, Euclidean, action, wl.b, scope, spec.intra),
            lc,
        ),
        InputPath::RegisterRoc => dev.launch(
            &RegisterRocKernel::new(input, Euclidean, action, wl.b, scope, spec.intra),
            lc,
        ),
        InputPath::Shuffle => dev.launch(
            &ShuffleKernel::new(input, Euclidean, action, wl.b, scope),
            lc,
        ),
    }
}

/// Compare two tallies on every data-independent field, panicking with a
/// field-by-field report on mismatch.
pub fn assert_exact_fields(name: &str, measured: &AccessTally, predicted: &AccessTally) {
    let fields: &[(&str, u64, u64)] = &[
        (
            "warp_instructions",
            measured.warp_instructions,
            predicted.warp_instructions,
        ),
        (
            "alu_instructions",
            measured.alu_instructions,
            predicted.alu_instructions,
        ),
        (
            "control_instructions",
            measured.control_instructions,
            predicted.control_instructions,
        ),
        (
            "shuffle_instructions",
            measured.shuffle_instructions,
            predicted.shuffle_instructions,
        ),
        (
            "sync_instructions",
            measured.sync_instructions,
            predicted.sync_instructions,
        ),
        (
            "global_load_instructions",
            measured.global_load_instructions,
            predicted.global_load_instructions,
        ),
        (
            "global_store_instructions",
            measured.global_store_instructions,
            predicted.global_store_instructions,
        ),
        (
            "global_load_bytes",
            measured.global_load_bytes,
            predicted.global_load_bytes,
        ),
        (
            "global_store_bytes",
            measured.global_store_bytes,
            predicted.global_store_bytes,
        ),
        (
            "global_atomics",
            measured.global_atomics,
            predicted.global_atomics,
        ),
        (
            "roc_load_instructions",
            measured.roc_load_instructions,
            predicted.roc_load_instructions,
        ),
        ("roc_bytes", measured.roc_bytes, predicted.roc_bytes),
        (
            "shared_load_instructions",
            measured.shared_load_instructions,
            predicted.shared_load_instructions,
        ),
        (
            "shared_store_instructions",
            measured.shared_store_instructions,
            predicted.shared_store_instructions,
        ),
        (
            "shared_bytes",
            measured.shared_bytes,
            predicted.shared_bytes,
        ),
        (
            "shared_atomics",
            measured.shared_atomics,
            predicted.shared_atomics,
        ),
        (
            "divergent_iterations",
            measured.divergent_iterations,
            predicted.divergent_iterations,
        ),
        (
            "blocks_executed",
            measured.blocks_executed,
            predicted.blocks_executed,
        ),
        (
            "warps_executed",
            measured.warps_executed,
            predicted.warps_executed,
        ),
    ];
    let mut bad = Vec::new();
    for (f, m, p) in fields {
        if m != p {
            bad.push(format!("  {f}: measured {m} vs predicted {p}"));
        }
    }
    assert!(
        bad.is_empty(),
        "{name}: analytic mismatch:\n{}",
        bad.join("\n")
    );
}

/// Assert `predicted` is within `tol` relative error of `measured`.
pub fn assert_close(name: &str, field: &str, measured: u64, predicted: u64, tol: f64) {
    if measured == 0 && predicted == 0 {
        return;
    }
    let m = measured as f64;
    let p = predicted as f64;
    let rel = (m - p).abs() / m.max(p).max(1.0);
    assert!(
        rel <= tol,
        "{name}.{field}: measured {measured} vs predicted {predicted} (rel {rel:.3})"
    );
}
