//! Pair-coverage exactness: every kernel variant must evaluate *exactly*
//! the set of unordered pairs {i, j}, i < j — no pair missed, none
//! duplicated. Verified by collecting the actual pairs through a
//! Type-III pair-list output with an infinite radius.

use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{launch_pairwise, PairwisePlan};
use tbs_core::analytic::InputPath;
use tbs_core::kernels::{IntraMode, PairScope};
use tbs_core::output::PairListAction;
use tbs_core::{Euclidean, SoaPoints};
use tbs_integration::lcg_points;

fn collect_pairs(
    pts: &SoaPoints<3>,
    input: InputPath,
    intra: IntraMode,
    block: u32,
    scope: PairScope,
) -> Vec<(u32, u32)> {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let d_input = pts.upload(&mut dev);
    let n = d_input.n as u64;
    let cap = (n * n) as u32;
    let cursor = dev.alloc_u32_zeroed(1);
    let out_left = dev.alloc_u32(vec![u32::MAX; cap as usize]);
    let out_right = dev.alloc_u32(vec![u32::MAX; cap as usize]);
    let action = PairListAction {
        radius: f32::INFINITY,
        cursor,
        out_left,
        out_right,
        capacity: cap,
        aggregated: false,
    };
    let plan = PairwisePlan {
        input,
        intra,
        block_size: block,
    };
    launch_pairwise(&mut dev, d_input, Euclidean, action, plan, scope).expect("launch");
    let total = dev.u32_slice(cursor)[0] as usize;
    let lhs = dev.u32_slice(out_left);
    let rhs = dev.u32_slice(out_right);
    let mut pairs: Vec<(u32, u32)> = (0..total).map(|k| (lhs[k], rhs[k])).collect();
    pairs.sort_unstable();
    pairs
}

fn all_half_pairs(n: u32) -> Vec<(u32, u32)> {
    let mut v = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            v.push((i, j));
        }
    }
    v
}

fn check_half(input: InputPath, intra: IntraMode, n: usize, block: u32) {
    let pts = lcg_points(n, 5);
    let mut got = collect_pairs(&pts, input, intra, block, PairScope::HalfPairs);
    // Canonicalize (i, j) ordering — the kernels emit (left, right) where
    // left is the thread's own point.
    for p in got.iter_mut() {
        *p = (p.0.min(p.1), p.0.max(p.1));
    }
    got.sort_unstable();
    assert_eq!(
        got,
        all_half_pairs(n as u32),
        "{input:?}/{intra:?} n={n} b={block}: wrong pair coverage"
    );
}

#[test]
fn naive_covers_all_pairs() {
    check_half(InputPath::Naive, IntraMode::Regular, 150, 32);
}

#[test]
fn register_shm_regular_covers_all_pairs() {
    check_half(InputPath::RegisterShm, IntraMode::Regular, 192, 64);
}

#[test]
fn register_shm_load_balanced_covers_all_pairs() {
    // The (t + j) mod B pairing with the half-iteration tail is subtle:
    // prove it produces each pair exactly once, including ragged blocks.
    check_half(InputPath::RegisterShm, IntraMode::LoadBalanced, 192, 64);
    check_half(InputPath::RegisterShm, IntraMode::LoadBalanced, 173, 64); // ragged
}

#[test]
fn shm_shm_both_intra_modes_cover_all_pairs() {
    check_half(InputPath::ShmShm, IntraMode::Regular, 160, 32);
    check_half(InputPath::ShmShm, IntraMode::LoadBalanced, 160, 32);
}

#[test]
fn register_roc_both_intra_modes_cover_all_pairs() {
    check_half(InputPath::RegisterRoc, IntraMode::Regular, 128, 64);
    check_half(InputPath::RegisterRoc, IntraMode::LoadBalanced, 130, 64); // ragged
}

#[test]
fn shuffle_covers_all_pairs() {
    check_half(InputPath::Shuffle, IntraMode::Regular, 200, 64);
    check_half(InputPath::Shuffle, IntraMode::Regular, 96, 32);
}

#[test]
fn all_pairs_scope_covers_each_ordered_pair_once() {
    let n = 96u32;
    let pts = lcg_points(n as usize, 9);
    for input in [InputPath::Naive, InputPath::RegisterShm, InputPath::Shuffle] {
        let got = collect_pairs(&pts, input, IntraMode::Regular, 32, PairScope::AllPairs);
        let mut expect = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    expect.push((i, j));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(got, expect, "{input:?} ordered-pair coverage");
    }
}

#[test]
fn tiny_inputs_smaller_than_one_block() {
    for n in [1usize, 2, 5, 31, 33] {
        check_half(InputPath::RegisterShm, IntraMode::Regular, n, 32);
        check_half(InputPath::RegisterShm, IntraMode::LoadBalanced, n, 32);
    }
}
