//! N = 0 is a documented no-op for every application and kernel variant:
//! `num_blocks(0, B) == 0` lowers to an empty (`grid_dim == 0`) launch
//! that executes nothing, touches no memory, and leaves every output
//! zeroed. These tests pin that contract across the whole app surface —
//! before the fix, `num_blocks` rounded 0 points up to one block and the
//! stray block faulted or produced garbage depending on the kernel.

use gpu_sim::config::ExecMode;
use gpu_sim::{Device, DeviceConfig};
use tbs_apps::{
    distance_join_gpu, distance_join_two_gpu, gram_gpu, kde_gpu, knn_gpu, pcf_gpu, rdf_gpu,
    sdh_gpu, sdh_multi_gpu, PairwisePlan, SdhOutputMode,
};
use tbs_core::analytic::profiles::InputPath;
use tbs_core::distance::Euclidean;
use tbs_core::histogram::HistogramSpec;
use tbs_core::kernels::IntraMode;
use tbs_core::point::SoaPoints;
use tbs_datagen::{box_diagonal, uniform_points, DEFAULT_BOX};

const ALL_INPUTS: [InputPath; 5] = [
    InputPath::Naive,
    InputPath::ShmShm,
    InputPath::RegisterShm,
    InputPath::RegisterRoc,
    InputPath::Shuffle,
];

fn empty() -> SoaPoints<3> {
    uniform_points::<3>(0, DEFAULT_BOX, 1)
}

fn spec() -> HistogramSpec {
    HistogramSpec::new(64, box_diagonal(DEFAULT_BOX, 3))
}

#[test]
fn empty_sdh_is_a_noop_for_every_variant_and_output_mode() {
    let pts = empty();
    for input in ALL_INPUTS {
        for intra in [IntraMode::Regular, IntraMode::LoadBalanced] {
            for output in [SdhOutputMode::Privatized, SdhOutputMode::GlobalAtomics] {
                let mut dev = Device::new(DeviceConfig::titan_x());
                let plan = PairwisePlan {
                    input,
                    intra,
                    block_size: 64,
                };
                let got = sdh_gpu(&mut dev, &pts, spec(), plan, output)
                    .unwrap_or_else(|e| panic!("{input:?}/{intra:?}/{output:?}: {e}"));
                assert!(
                    got.histogram.counts().iter().all(|&c| c == 0),
                    "{input:?}/{intra:?}/{output:?} histogram not zeroed"
                );
                assert_eq!(
                    got.pair_run.tally.blocks_executed, 0,
                    "{input:?}/{intra:?}/{output:?} executed blocks"
                );
                assert_eq!(got.pair_run.timing.seconds, 0.0);
            }
        }
    }
}

#[test]
fn empty_sdh_is_a_noop_in_parallel_mode_too() {
    let pts = empty();
    let cfg = DeviceConfig::titan_x().with_exec_mode(ExecMode::Parallel { threads: 3 });
    let mut dev = Device::new(cfg);
    let got = sdh_gpu(
        &mut dev,
        &pts,
        spec(),
        PairwisePlan::register_shm(64),
        SdhOutputMode::Privatized,
    )
    .expect("launch");
    assert!(got.histogram.counts().iter().all(|&c| c == 0));
    assert_eq!(got.pair_run.tally.blocks_executed, 0);
}

#[test]
fn empty_pcf_counts_zero_pairs() {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let got = pcf_gpu(&mut dev, &empty(), 25.0, PairwisePlan::register_shm(64)).expect("launch");
    assert_eq!(got.count, 0);
    assert_eq!(got.run.tally.blocks_executed, 0);
}

#[test]
fn empty_knn_returns_no_rows() {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let got = knn_gpu::<3, 4>(&mut dev, &empty(), PairwisePlan::register_shm(64)).expect("launch");
    assert!(got.neighbors.is_empty());
    assert!(got.distances.is_empty());
}

#[test]
fn empty_kde_returns_no_densities() {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let got = kde_gpu(&mut dev, &empty(), 0.5, PairwisePlan::register_shm(64)).expect("launch");
    assert!(got.densities.is_empty());
}

#[test]
fn empty_gram_is_an_empty_matrix() {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let got = gram_gpu(
        &mut dev,
        &empty(),
        Euclidean,
        PairwisePlan::register_shm(64),
    )
    .expect("launch");
    assert_eq!(got.n, 0);
    assert!(got.matrix.is_empty());
}

#[test]
fn empty_join_matches_nothing() {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let got = distance_join_gpu(
        &mut dev,
        &empty(),
        10.0,
        8,
        true,
        PairwisePlan::register_shm(64),
    )
    .expect("launch");
    assert_eq!(got.total_matches, 0);
    assert!(got.pairs.is_empty());
}

#[test]
fn join_with_one_empty_side_matches_nothing() {
    let pts = uniform_points::<3>(100, DEFAULT_BOX, 5);
    let mut dev = Device::new(DeviceConfig::titan_x());
    let got = distance_join_two_gpu(&mut dev, &pts, &empty(), 50.0, 8, false, 64).expect("launch");
    assert_eq!(got.total_matches, 0);
    let mut dev2 = Device::new(DeviceConfig::titan_x());
    let got2 =
        distance_join_two_gpu(&mut dev2, &empty(), &pts, 50.0, 8, false, 64).expect("launch");
    assert_eq!(got2.total_matches, 0);
}

#[test]
fn empty_rdf_is_all_zero() {
    let mut dev = Device::new(DeviceConfig::titan_x());
    let (rdf, sdh) = rdf_gpu(
        &mut dev,
        &empty(),
        spec(),
        DEFAULT_BOX,
        PairwisePlan::register_shm(64),
    )
    .expect("launch");
    assert!(sdh.histogram.counts().iter().all(|&c| c == 0));
    assert!(
        rdf.g.iter().all(|&g| g == 0.0),
        "g(r) must be identically zero"
    );
}

#[test]
fn empty_multi_gpu_sdh_merges_to_zero() {
    let got = sdh_multi_gpu(
        &empty(),
        spec(),
        PairwisePlan::register_shm(64),
        3,
        &DeviceConfig::titan_x(),
    )
    .expect("launch");
    assert!(got.histogram.counts().iter().all(|&c| c == 0));
}
